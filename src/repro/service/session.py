"""Client-side handle for one live monitoring stream on the service.

A :class:`Session` mirrors the :class:`~repro.monitor.online.OnlineMonitor`
surface (``observe`` / ``advance_to`` / ``poll`` / ``finish``) but the
monitor state lives inside the worker process the session is sharded to —
so hundreds of live feeds progress in parallel across the pool while each
individual stream stays strictly ordered (per-worker inboxes are FIFO).

``observe`` is asynchronous: events buffer client-side and flush to the
worker in batches, so a hot feed costs one queue round-trip per segment
advance rather than one per event.  Validation errors (an event behind the
frontier, a non-advancing boundary) therefore surface at the *next
synchronising call* (``advance_to``/``poll``/``finish``), not at
``observe`` itself — the one semantic difference from the in-process
``OnlineMonitor``.

Sessions are **migratable**: :meth:`migrate` moves the worker-side
monitor state to another pool endpoint mid-stream (see
:mod:`repro.service.rebalance` for the policies that decide when).  All
session calls serialize on one internal lock, so a migration triggered
by a background rebalancer interleaves safely with the thread feeding
the stream, and per-stream ordering holds across the hop: everything
sent before the hop completes on the origin endpoint before the snapshot
is taken, and everything after goes to the target.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from repro.errors import MonitorError, ServiceError
from repro.monitor.verdicts import MonitorResult
from repro.mtl.ast import Formula
from repro.service.futures import MonitorFuture, raise_remote
from repro.transport.frames import RESTORE_SESSION, SNAPSHOT_SESSION

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.service.service import MonitorService

#: Client-side observe buffer auto-flushes beyond this many events.
OBSERVE_FLUSH_THRESHOLD = 256

#: Bound on each blocking round-trip inside a migration (snapshot,
#: restore): a hop must fail loudly rather than park the stream forever
#: behind a wedged endpoint.
MIGRATE_TIMEOUT = 30.0


@dataclass(frozen=True)
class SessionStatus:
    """Snapshot of one session's progress (built worker-side by ``poll``)."""

    verdicts: frozenset[bool]
    pending: int
    undecided_residuals: int
    finished: bool


class Session:
    """One multiplexed online-monitoring stream (build via
    :meth:`~repro.service.MonitorService.open_session`)."""

    def __init__(
        self,
        service: "MonitorService",
        session_id: int,
        worker_index: int,
        formula: Formula,
        epsilon: int,
    ) -> None:
        self._service = service
        self._id = session_id
        self._worker = worker_index
        self._formula = formula
        self._epsilon = epsilon
        self._buffer: list[tuple[str, int, frozenset[str], dict[str, float] | None]] = []
        self._inflight: deque[MonitorFuture] = deque()
        self._finished = False
        self._result: MonitorResult | None = None
        # One lock serializes every session call (feeding thread,
        # rebalancer thread): reentrant because the synchronising calls
        # flush internally.
        self._lock = threading.RLock()
        self._events_observed = 0
        self._migrations = 0

    @property
    def session_id(self) -> int:
        return self._id

    @property
    def worker_index(self) -> int:
        """The pool worker this session is currently pinned to (may change
        when the session is migrated)."""
        return self._worker

    @property
    def endpoint(self) -> str:
        """Transport endpoint of the worker hosting this stream
        (``local[i]`` or ``tcp://host:port``)."""
        return self._service.endpoint(self._worker)

    @property
    def formula(self) -> Formula:
        return self._formula

    @property
    def epsilon(self) -> int:
        return self._epsilon

    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def events_observed(self) -> int:
        """Total events fed so far (the rebalancer's per-stream heat signal)."""
        return self._events_observed

    @property
    def migrations(self) -> int:
        """How many times this stream has hopped endpoints."""
        return self._migrations

    # -- feeding -----------------------------------------------------------------

    def observe(
        self,
        process: str,
        local_time: int,
        props: object = (),
        deltas: Mapping[str, float] | None = None,
    ) -> None:
        """Buffer one event for the stream (asynchronous, non-blocking)."""
        with self._lock:
            self._ensure_live()
            if isinstance(props, str):
                props = (props,)
            self._buffer.append(
                (process, local_time, frozenset(props), dict(deltas) if deltas else None)
            )
            self._events_observed += 1
            if len(self._buffer) >= OBSERVE_FLUSH_THRESHOLD:
                self._flush()

    def _flush(self) -> None:
        """Ship buffered events to the worker (fire-and-forget, tracked).

        A send that fails (dead endpoint, closed service) keeps the
        buffer intact and raises :class:`~repro.errors.ServiceError`
        naming the event count — buffered events must never be dropped
        silently just because the worker died before a flush.
        """
        if not self._buffer:
            return
        try:
            future = self._service._send_session(
                self._worker, "session_observe", (self._id, self._buffer)
            )
        except ServiceError as exc:
            raise ServiceError(
                f"{len(self._buffer)} buffered observe event(s) for session "
                f"{self._id} could not be flushed to {self._endpoint_text()}: {exc}"
            ) from exc
        self._buffer = []
        self._inflight.append(future)

    def _check_inflight(self, wait: bool = False) -> None:
        """Surface the first failed observe batch; drop completed ones.

        A failed batch is removed *before* its error raises, so the
        session stays usable afterwards (mirroring the in-process
        ``OnlineMonitor``, where a rejected ``observe`` does not poison
        the stream).
        """
        while self._inflight:
            future = self._inflight[0]
            if not wait and not future.done():
                break
            self._inflight.popleft()
            future.result()  # raises the remote error if the batch failed

    # -- advancing / inspecting ----------------------------------------------------

    def advance_to(self, boundary: int) -> frozenset[bool]:
        """Declare all times below ``boundary`` final; return decided verdicts."""
        with self._lock:
            self._ensure_live()
            self._flush()
            self._check_inflight()
            verdicts = self._roundtrip("session_advance", (self._id, boundary))
            self._check_inflight(wait=True)
            return verdicts

    def poll(self) -> SessionStatus:
        """Current verdicts / buffered-event / residual counts (cheap round-trip)."""
        with self._lock:
            if self._finished:
                return SessionStatus(
                    verdicts=self._result.verdicts if self._result else frozenset(),
                    pending=0,
                    undecided_residuals=0,
                    finished=True,
                )
            self._flush()
            self._check_inflight()
            status = self._roundtrip("session_poll", (self._id,))
            # Responses are FIFO per worker, so any flushed observe batch has
            # resolved by now — surface its rejection here, not one call late.
            self._check_inflight(wait=True)
            return status

    def finish(self) -> MonitorResult:
        """Consume everything buffered, close residuals, return the verdicts.

        Idempotent: repeated calls return the same result object.  A
        session discarded with :meth:`close` has no verdicts to return.
        """
        with self._lock:
            if self._finished:
                if self._result is None:
                    raise MonitorError(
                        f"session {self._id} was closed without computing verdicts"
                    )
                return self._result
            self._flush()
            self._check_inflight()
            self._result = self._roundtrip("session_finish", (self._id,))
            self._finished = True
            self._service._forget_session(self._id)
            return self._result

    def close(self) -> None:
        """Discard the stream without computing verdicts."""
        with self._lock:
            if self._finished:
                return
            self._buffer.clear()
            self._inflight.clear()
            try:
                self._roundtrip("session_close", (self._id,))
            finally:
                self._finished = True
                self._service._forget_session(self._id)

    # -- migration ----------------------------------------------------------------

    def migrate(self, target_index: int, timeout: float = MIGRATE_TIMEOUT) -> None:
        """Move this stream's monitor state to another pool endpoint.

        The hop preserves strict per-stream ordering and is atomic from
        the caller's perspective:

        1. the client observe buffer is drained to the origin endpoint
           (so the snapshot sees every event observed so far);
        2. the origin serializes the monitor (``session_snapshot``) —
           FIFO per connection, so the snapshot executes after every
           flushed batch;
        3. the target rehydrates it (``session_restore``);
        4. only then is the stale origin copy discarded and the session
           repointed — every later call goes to the target.

        A failed hop (dead target, refused restore) raises and leaves
        the stream exactly where it was, still usable on the origin.
        Safe to call from a background thread (the rebalancer) while
        another thread feeds the stream.
        """
        with self._lock:
            self._ensure_live()
            origin = self._worker
            if target_index == origin:
                return
            if not 0 <= target_index < self._service.workers:
                raise MonitorError(
                    f"cannot migrate session {self._id}: no endpoint {target_index} "
                    f"in a pool of {self._service.workers}"
                )
            self._flush()
            snapshot = self._service._send_session(
                origin, SNAPSHOT_SESSION, (self._id,)
            ).result(timeout)
            # FIFO: every flushed observe batch resolved before the
            # snapshot did — surface a rejection now, before the hop.
            self._check_inflight(wait=True)
            try:
                self._service._send_session(
                    target_index, RESTORE_SESSION, (self._id, snapshot)
                ).result(timeout)
            except BaseException:
                # The restore may still be queued on the target (a
                # timeout lost the race, not the request): queue a
                # discard behind it — FIFO, so whichever way the race
                # went the target ends up without a duplicate copy.
                self._discard_copy(target_index)
                raise
            # The hop landed: repoint, then discard the stale origin
            # copy.  Waiting for the ack keeps the outstanding counters
            # settled when migrate returns; a dying origin takes its
            # copy with it, so failure here is fine.
            self._worker = target_index
            self._migrations += 1
            self._discard_copy(origin, wait=timeout)

    def _discard_copy(self, worker_index: int, wait: float | None = None) -> None:
        """Best-effort ``session_close`` for a stale copy on one endpoint."""
        try:
            future = self._service._send_session(
                worker_index, "session_close", (self._id,)
            )
            if wait is not None:
                future.result(wait)
        except Exception:  # noqa: BLE001 — cleanup must not mask the outcome
            pass

    # -- plumbing -----------------------------------------------------------------

    def _roundtrip(self, op: str, payload: object):
        return self._service._send_session(self._worker, op, payload).result()

    def _endpoint_text(self) -> str:
        try:
            return self._service.endpoint(self._worker)
        except Exception:  # noqa: BLE001 — diagnostics must not mask the error
            return f"worker {self._worker}"

    def _ensure_live(self) -> None:
        if self._finished:
            raise MonitorError(f"session {self._id} already finished")
