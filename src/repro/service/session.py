"""Client-side handle for one live monitoring stream on the service.

A :class:`Session` mirrors the :class:`~repro.monitor.online.OnlineMonitor`
surface (``observe`` / ``advance_to`` / ``poll`` / ``finish``) but the
monitor state lives inside the worker process the session is sharded to —
so hundreds of live feeds progress in parallel across the pool while each
individual stream stays strictly ordered (per-worker inboxes are FIFO).

``observe`` is asynchronous: events buffer client-side and flush to the
worker in batches, so a hot feed costs one queue round-trip per segment
advance rather than one per event.  Validation errors (an event behind the
frontier, a non-advancing boundary) therefore surface at the *next
synchronising call* (``advance_to``/``poll``/``finish``), not at
``observe`` itself — the one semantic difference from the in-process
``OnlineMonitor``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from repro.errors import MonitorError
from repro.monitor.verdicts import MonitorResult
from repro.mtl.ast import Formula
from repro.service.futures import MonitorFuture, raise_remote

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.service.service import MonitorService

#: Client-side observe buffer auto-flushes beyond this many events.
OBSERVE_FLUSH_THRESHOLD = 256


@dataclass(frozen=True)
class SessionStatus:
    """Snapshot of one session's progress (built worker-side by ``poll``)."""

    verdicts: frozenset[bool]
    pending: int
    undecided_residuals: int
    finished: bool


class Session:
    """One multiplexed online-monitoring stream (build via
    :meth:`~repro.service.MonitorService.open_session`)."""

    def __init__(
        self,
        service: "MonitorService",
        session_id: int,
        worker_index: int,
        formula: Formula,
        epsilon: int,
    ) -> None:
        self._service = service
        self._id = session_id
        self._worker = worker_index
        self._formula = formula
        self._epsilon = epsilon
        self._buffer: list[tuple[str, int, frozenset[str], dict[str, float] | None]] = []
        self._inflight: deque[MonitorFuture] = deque()
        self._finished = False
        self._result: MonitorResult | None = None

    @property
    def session_id(self) -> int:
        return self._id

    @property
    def worker_index(self) -> int:
        """The pool worker this session is sharded to."""
        return self._worker

    @property
    def endpoint(self) -> str:
        """Transport endpoint of the worker hosting this stream
        (``local[i]`` or ``tcp://host:port``)."""
        return self._service.endpoint(self._worker)

    @property
    def formula(self) -> Formula:
        return self._formula

    @property
    def epsilon(self) -> int:
        return self._epsilon

    @property
    def finished(self) -> bool:
        return self._finished

    # -- feeding -----------------------------------------------------------------

    def observe(
        self,
        process: str,
        local_time: int,
        props: object = (),
        deltas: Mapping[str, float] | None = None,
    ) -> None:
        """Buffer one event for the stream (asynchronous, non-blocking)."""
        self._ensure_live()
        if isinstance(props, str):
            props = (props,)
        self._buffer.append(
            (process, local_time, frozenset(props), dict(deltas) if deltas else None)
        )
        if len(self._buffer) >= OBSERVE_FLUSH_THRESHOLD:
            self._flush()

    def _flush(self) -> None:
        """Ship buffered events to the worker (fire-and-forget, tracked)."""
        if not self._buffer:
            return
        events, self._buffer = self._buffer, []
        future = self._service._send_session(self._worker, "session_observe", (self._id, events))
        self._inflight.append(future)

    def _check_inflight(self, wait: bool = False) -> None:
        """Surface the first failed observe batch; drop completed ones.

        A failed batch is removed *before* its error raises, so the
        session stays usable afterwards (mirroring the in-process
        ``OnlineMonitor``, where a rejected ``observe`` does not poison
        the stream).
        """
        while self._inflight:
            future = self._inflight[0]
            if not wait and not future.done():
                break
            self._inflight.popleft()
            future.result()  # raises the remote error if the batch failed

    # -- advancing / inspecting ----------------------------------------------------

    def advance_to(self, boundary: int) -> frozenset[bool]:
        """Declare all times below ``boundary`` final; return decided verdicts."""
        self._ensure_live()
        self._flush()
        self._check_inflight()
        verdicts = self._roundtrip("session_advance", (self._id, boundary))
        self._check_inflight(wait=True)
        return verdicts

    def poll(self) -> SessionStatus:
        """Current verdicts / buffered-event / residual counts (cheap round-trip)."""
        if self._finished:
            return SessionStatus(
                verdicts=self._result.verdicts if self._result else frozenset(),
                pending=0,
                undecided_residuals=0,
                finished=True,
            )
        self._flush()
        self._check_inflight()
        status = self._roundtrip("session_poll", (self._id,))
        # Responses are FIFO per worker, so any flushed observe batch has
        # resolved by now — surface its rejection here, not one call late.
        self._check_inflight(wait=True)
        return status

    def finish(self) -> MonitorResult:
        """Consume everything buffered, close residuals, return the verdicts.

        Idempotent: repeated calls return the same result object.  A
        session discarded with :meth:`close` has no verdicts to return.
        """
        if self._finished:
            if self._result is None:
                raise MonitorError(
                    f"session {self._id} was closed without computing verdicts"
                )
            return self._result
        self._flush()
        self._check_inflight()
        self._result = self._roundtrip("session_finish", (self._id,))
        self._finished = True
        self._service._forget_session(self._id)
        return self._result

    def close(self) -> None:
        """Discard the stream without computing verdicts."""
        if self._finished:
            return
        self._buffer.clear()
        self._inflight.clear()
        try:
            self._roundtrip("session_close", (self._id,))
        finally:
            self._finished = True
            self._service._forget_session(self._id)

    # -- plumbing -----------------------------------------------------------------

    def _roundtrip(self, op: str, payload: object):
        return self._service._send_session(self._worker, op, payload).result()

    def _ensure_live(self) -> None:
        if self._finished:
            raise MonitorError(f"session {self._id} already finished")
