"""Live rebalancing: migrate hot sessions off overloaded endpoints.

Session placement is decided once, at ``open_session`` time — good
enough for uniform feeds, but a skewed mix (one stream running 10× the
event rate of the rest) pins load to whichever endpoint looked quiet at
open.  The :class:`Rebalancer` closes that gap: a background thread that
watches two signals —

* per-endpoint **outstanding-request depth**
  (:meth:`~repro.service.MonitorService.outstanding`, the same signal
  ``least_loaded`` placement uses), and
* per-session **event rates** (deltas of
  :attr:`~repro.service.session.Session.events_observed` between
  cycles),

and migrates the hottest sessions off overloaded endpoints via
:meth:`~repro.service.session.Session.migrate` (the worker-side
snapshot/restore hop), working identically over local and TCP
transports.  Migration never changes verdicts — the snapshot carries the
monitor's exact state — so rebalancing is purely a latency/throughput
lever.

Policies are pluggable: pass ``"threshold"`` (hop only when endpoint
queue depths diverge), ``"periodic"`` (every cycle, greedily even out
per-endpoint event rates), or any callable ``policy(view) -> [(session,
target_index), ...]`` taking a :class:`PoolView`.  Manual control stays
available regardless: :meth:`~repro.service.MonitorService.migrate`.

Usage::

    with MonitorService(workers=4, rebalance="threshold") as svc:   # automatic
        ...
    rb = Rebalancer(service, policy="periodic", interval=0.2)       # explicit
    rb.start(); ...; rb.stop()
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

from repro.errors import MonitorError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.service.service import MonitorService
    from repro.service.session import Session

#: Default cadence of rebalance cycles (seconds).
REBALANCE_INTERVAL = 0.25

#: Default ``"threshold"`` policy trigger: the busiest endpoint must hold
#: at least this many more outstanding requests than the quietest.
OUTSTANDING_THRESHOLD = 2

#: Policy names accepted by :class:`Rebalancer` and ``MonitorService(rebalance=...)``.
POLICIES = ("threshold", "periodic")

#: Cycles a freshly migrated session sits out before it may hop again —
#: damping for signals (queue depth, rates) that need a cycle or two to
#: reflect the move.
MIGRATION_COOLDOWN_CYCLES = 4

#: Consecutive cycles an endpoint must stay past the steal threshold
#: before the rebalancer steals its queued batch work — one hot sample
#: is noise; a streak is a stuck queue.
STEAL_PATIENCE_CYCLES = 2

#: A session whose event rate is at least this multiple of the mean live
#: session rate is marked *hot* (drives ``standby="hot"`` replication).
HOT_STREAM_FACTOR = 3.0


@dataclass(frozen=True)
class PoolView:
    """One cycle's picture of the pool, handed to the policy."""

    #: Per-endpoint outstanding-request depth, by worker index.
    outstanding: Sequence[int]
    #: Per-endpoint death flags (a dead endpoint is never a target).
    dead: Sequence[bool]
    #: Live sessions, each pinned to ``session.worker_index``.
    sessions: Sequence["Session"]
    #: Per-session event rate (events/second since the previous cycle).
    rates: dict[int, float]

    def live_endpoints(self) -> list[int]:
        return [index for index, dead in enumerate(self.dead) if not dead]

    def endpoint_rate(self, worker_index: int) -> float:
        """Summed event rate of the sessions pinned to one endpoint."""
        return sum(
            self.rates.get(session.session_id, 0.0)
            for session in self.sessions
            if session.worker_index == worker_index
        )

    def session_count(self, worker_index: int) -> int:
        """Live sessions currently pinned to one endpoint."""
        return sum(
            1
            for session in self.sessions
            if session.worker_index == worker_index and not session.finished
        )

    def hottest_session(self, worker_index: int) -> "Session | None":
        """The highest-rate live session on one endpoint, if any."""
        candidates = [
            session for session in self.sessions
            if session.worker_index == worker_index and not session.finished
        ]
        if not candidates:
            return None
        return max(
            candidates, key=lambda s: self.rates.get(s.session_id, 0.0)
        )


#: A policy maps one :class:`PoolView` to the migrations to attempt.
Policy = Callable[[PoolView], "list[tuple[Session, int]]"]


def threshold_policy(threshold: int = OUTSTANDING_THRESHOLD) -> Policy:
    """Hop only on queue-depth divergence.

    When the busiest live endpoint holds at least ``threshold`` more
    outstanding requests than the quietest, move its hottest session to
    the quietest.  Conservative: an evenly loaded pool never migrates.
    """

    def policy(view: PoolView) -> list[tuple["Session", int]]:
        live = view.live_endpoints()
        if len(live) < 2:
            return []
        busiest = max(live, key=lambda i: view.outstanding[i])
        quietest = min(live, key=lambda i: view.outstanding[i])
        if view.outstanding[busiest] - view.outstanding[quietest] < threshold:
            return []
        session = view.hottest_session(busiest)
        if session is None:
            return []
        return [(session, quietest)]

    return policy


def periodic_policy() -> Policy:
    """Greedily even out per-endpoint event rates every cycle.

    Moves the hottest session off the endpoint with the highest summed
    event rate to the one with the lowest — but only off an endpoint it
    *shares*: isolating a hot stream relieves its co-tenants, whereas
    bouncing a lone hot stream between endpoints shifts the same load
    around forever (a rate-symmetric swap), so a session alone on its
    endpoint stays put and the policy reaches a fixed point.
    """

    def policy(view: PoolView) -> list[tuple["Session", int]]:
        live = view.live_endpoints()
        if len(live) < 2:
            return []
        by_rate = {index: view.endpoint_rate(index) for index in live}
        busiest = max(live, key=lambda i: by_rate[i])
        quietest = min(live, key=lambda i: (by_rate[i], view.session_count(i)))
        if by_rate[busiest] <= by_rate[quietest]:
            return []
        if view.session_count(busiest) < 2:
            return []  # already isolated: moving it is a pure swap
        session = view.hottest_session(busiest)
        if session is None or view.rates.get(session.session_id, 0.0) <= 0.0:
            return []
        return [(session, quietest)]

    return policy


def resolve_policy(spec: "str | Policy", threshold: int = OUTSTANDING_THRESHOLD) -> Policy:
    """Turn a policy spec (name or callable) into a callable policy."""
    if callable(spec):
        return spec
    if spec == "threshold":
        return threshold_policy(threshold)
    if spec == "periodic":
        return periodic_policy()
    raise MonitorError(
        f"unknown rebalance policy {spec!r}; known: {', '.join(POLICIES)} "
        f"or any callable policy(view)"
    )


@dataclass(frozen=True)
class Migration:
    """Record of one completed hop (see :attr:`Rebalancer.migrations`)."""

    session_id: int
    origin: int
    target: int


@dataclass
class RebalanceStats:
    """Counters the rebalancer keeps for introspection and tests."""

    cycles: int = 0
    migrations: list[Migration] = field(default_factory=list)
    failed: int = 0
    #: Live-steal sweeps initiated (summed ``steal_queued`` results).
    steals: int = 0


class Rebalancer:
    """Background thread that applies a rebalance policy to a service.

    Migrations are best-effort: a hop that fails (target died between
    the decision and the move, session finished mid-decision) is counted
    in ``stats.failed`` and the stream stays where it was — the policy
    simply sees the true picture again next cycle.
    """

    def __init__(
        self,
        service: "MonitorService",
        policy: "str | Policy" = "threshold",
        interval: float = REBALANCE_INTERVAL,
        threshold: int = OUTSTANDING_THRESHOLD,
        cooldown: int = MIGRATION_COOLDOWN_CYCLES,
        steal_threshold: int | None = None,
        steal_patience: int = STEAL_PATIENCE_CYCLES,
    ) -> None:
        if interval <= 0:
            raise MonitorError(f"rebalance interval must be > 0, got {interval}")
        if steal_threshold is not None and steal_threshold < 1:
            raise MonitorError(
                f"steal threshold must be >= 1, got {steal_threshold}"
            )
        self._service = service
        self._policy = resolve_policy(policy, threshold)
        self._interval = interval
        self._cooldown = max(0, cooldown)
        self._cooling: dict[int, int] = {}
        self._steal_threshold = steal_threshold
        self._steal_patience = max(1, steal_patience)
        #: Per-endpoint consecutive cycles past the steal threshold.
        self._overload_streak: dict[int, int] = {}
        self._stop = threading.Event()
        self._kick = threading.Event()
        self._thread: threading.Thread | None = None
        self._last_counts: dict[int, int] = {}
        self.stats = RebalanceStats()

    @property
    def migrations(self) -> list[Migration]:
        """Completed hops, in order."""
        return list(self.stats.migrations)

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "Rebalancer":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._loop, name="monitor-service-rebalancer", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        self._kick.set()  # wake a sleeping loop so stop() is prompt
        if self._thread is not None:
            self._thread.join(timeout)

    def kick(self) -> None:
        """Run a cycle now instead of at the next interval tick.

        Called on membership changes (an endpoint joined or is
        retiring): a placement event should reflow load immediately, not
        up to one interval later.
        """
        self._kick.set()

    # -- one cycle ------------------------------------------------------------------

    def _loop(self) -> None:
        while True:
            self._kick.wait(self._interval)
            self._kick.clear()
            if self._stop.is_set() or self._service.closed:
                return
            try:
                self.run_cycle()
            except Exception:  # noqa: BLE001 — rebalancing must never kill the pool
                self.stats.failed += 1

    def run_cycle(self) -> list[Migration]:
        """Sample the pool, ask the policy, attempt its migrations.

        Public so tests and manual operators can drive cycles
        deterministically without the background thread.
        """
        view = self._build_view()
        self._cooling = {
            session_id: left - 1
            for session_id, left in self._cooling.items()
            if left > 1
        }
        moved: list[Migration] = []
        for session, target in self._policy(view):
            origin = session.worker_index
            if target == origin or view.dead[target]:
                continue
            if session.session_id in self._cooling:
                continue  # just hopped: let the signals catch up first
            try:
                session.migrate(target)
            except Exception:  # noqa: BLE001 — best-effort; retry next cycle
                self.stats.failed += 1
                continue
            record = Migration(session.session_id, origin, target)
            self.stats.migrations.append(record)
            moved.append(record)
            if self._cooldown:
                self._cooling[session.session_id] = self._cooldown
        self._mark_heat(view)
        self._steal_from_overloaded(view)
        self.stats.cycles += 1
        return moved

    def _mark_heat(self, view: PoolView) -> None:
        """Flag sessions running far above the mean rate as *hot*.

        Drives ``standby="hot"`` durability: only streams the rebalancer
        considers hot keep a warm replica.  Duck-typed (``mark_hot`` /
        ``mark_cold``) so policy unit tests with bare fakes stay valid.
        """
        live = [s for s in view.sessions if not s.finished]
        if not live:
            return
        mean = sum(view.rates.get(s.session_id, 0.0) for s in live) / len(live)
        for session in live:
            rate = view.rates.get(session.session_id, 0.0)
            hot = mean > 0.0 and rate >= HOT_STREAM_FACTOR * mean
            marker = getattr(session, "mark_hot" if hot else "mark_cold", None)
            if marker is not None:
                marker()

    def _steal_from_overloaded(self, view: PoolView) -> None:
        """Steal queued batch work off persistently overloaded endpoints.

        An endpoint whose outstanding depth exceeds the quietest live
        endpoint's by at least ``steal_threshold`` for ``steal_patience``
        consecutive cycles gets its *queued* (proven-unstarted) batch
        requests re-placed via
        :meth:`~repro.service.MonitorService.steal_queued` — migration
        moves future session load, stealing rescues the backlog already
        queued.
        """
        if self._steal_threshold is None:
            return
        live = view.live_endpoints()
        if len(live) < 2:
            self._overload_streak.clear()
            return
        quietest = min(view.outstanding[i] for i in live)
        for index in live:
            if view.outstanding[index] - quietest >= self._steal_threshold:
                streak = self._overload_streak.get(index, 0) + 1
                self._overload_streak[index] = streak
                if streak >= self._steal_patience:
                    try:
                        self.stats.steals += self._service.steal_queued(index)
                    except Exception:  # noqa: BLE001 — best-effort, like hops
                        self.stats.failed += 1
                    self._overload_streak[index] = 0
            else:
                self._overload_streak.pop(index, None)

    def _build_view(self) -> PoolView:
        sessions = self._service.live_sessions()
        counts = {session.session_id: session.events_observed for session in sessions}
        rates = {
            session_id: max(0.0, (count - self._last_counts.get(session_id, 0)))
            / self._interval
            for session_id, count in counts.items()
        }
        self._last_counts = counts
        return PoolView(
            outstanding=self._service.outstanding(),
            dead=self._service.dead_endpoints(),
            sessions=sessions,
            rates=rates,
        )
