"""The service pool's worker process: one loop, many sessions.

Each worker owns a private inbox queue (so requests for one session are
processed strictly in submission order) and shares one outbox with the
whole pool.  Besides one-shot batch/shard tasks it keeps a registry of
live :class:`~repro.monitor.online.OnlineMonitor` instances — the
server-side half of the session API — keyed by session id.

Every request produces exactly one response; worker-side exceptions are
captured as ``"TypeName: message"`` strings and re-raised client-side by
:func:`~repro.service.futures.raise_remote`.  The loop itself never dies
on a request failure — only the ``None`` shutdown sentinel ends it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any

from repro.errors import MonitorError
from repro.monitor.online import OnlineMonitor
from repro.service.session import SessionStatus
from repro.service.tasks import (
    MonitorTask,
    SegmentShardTask,
    run_monitor_task,
    run_segment_shard,
)


@dataclass
class Request:
    """One unit of work for a pool worker."""

    request_id: int
    op: str
    payload: Any


@dataclass
class Response:
    """The worker's answer to one request."""

    request_id: int
    payload: Any = None
    error: str | None = None
    worker: int = 0


def service_worker_loop(worker_index: int, inbox, response_writer) -> None:
    """Process requests until the shutdown sentinel (``None``) arrives.

    Responses go over this worker's *private* pipe connection: one writer
    per pipe means no lock is shared between workers, so a worker dying
    mid-write (OOM-kill, crash) can never wedge the others' responses —
    the parent just sees EOF on this worker's pipe.
    """
    sessions: dict[int, OnlineMonitor] = {}
    pid = os.getpid()
    while True:
        request = inbox.get()
        if request is None:
            break
        try:
            payload = _dispatch(request.op, request.payload, sessions)
            response = Response(request.request_id, payload, None, pid)
        except Exception as exc:  # noqa: BLE001 — the loop must survive any request
            response = Response(
                request.request_id, None, f"{type(exc).__name__}: {exc}", pid
            )
        try:
            response_writer.send(response)
        except Exception as exc:  # noqa: BLE001 — e.g. an unpicklable payload
            # A payload that cannot cross the pipe (a registered custom
            # engine returning an unpicklable result, say) must fail only
            # its own request, not the worker and every session on it.
            try:
                response_writer.send(
                    Response(
                        request.request_id,
                        None,
                        f"{type(exc).__name__}: response not picklable: {exc}",
                        pid,
                    )
                )
            except Exception:  # noqa: BLE001 — pipe itself is gone
                break  # parent closed/broke the pipe: exit the loop
    response_writer.close()


def _session(sessions: dict[int, OnlineMonitor], session_id: int) -> OnlineMonitor:
    try:
        return sessions[session_id]
    except KeyError:
        raise MonitorError(f"unknown session {session_id}") from None


def _dispatch(op: str, payload: Any, sessions: dict[int, OnlineMonitor]) -> Any:
    if op == "monitor":
        task: MonitorTask = payload
        return run_monitor_task(task)
    if op == "shard":
        shard: SegmentShardTask = payload
        return run_segment_shard(shard)
    if op == "session_open":
        session_id, formula, epsilon, kwargs = payload
        if session_id in sessions:
            raise MonitorError(f"session {session_id} already open")
        sessions[session_id] = OnlineMonitor(formula, epsilon, **kwargs)
        return session_id
    if op == "session_observe":
        session_id, events = payload
        monitor = _session(sessions, session_id)
        # Events validate independently, like repeated in-process
        # ``observe`` calls: a rejected event must not drop the valid
        # events batched after it.  All rejections surface in one error.
        rejected: list[str] = []
        for process, local_time, props, deltas in events:
            try:
                monitor.observe(process, local_time, props, deltas)
            except MonitorError as exc:
                rejected.append(str(exc))
        if rejected:
            suffix = "" if len(rejected) == 1 else f" (+{len(rejected) - 1} more)"
            raise MonitorError(
                f"{len(rejected)}/{len(events)} observed event(s) rejected: "
                f"{rejected[0]}{suffix}"
            )
        return len(events)
    if op == "session_advance":
        session_id, boundary = payload
        return _session(sessions, session_id).advance_to(boundary)
    if op == "session_poll":
        (session_id,) = payload
        monitor = _session(sessions, session_id)
        return SessionStatus(
            verdicts=monitor.current_verdicts,
            pending=monitor.pending,
            undecided_residuals=monitor.undecided_residuals,
            finished=monitor.finished,
        )
    if op == "session_finish":
        (session_id,) = payload
        result = _session(sessions, session_id).finish()
        del sessions[session_id]
        return result
    if op == "session_close":
        (session_id,) = payload
        return sessions.pop(session_id, None) is not None
    if op == "ping":
        return (os.getpid(), len(sessions))
    raise MonitorError(f"unknown service op {op!r}")
