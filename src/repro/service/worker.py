"""The service pool's worker side: request execution, transport-agnostic.

:class:`RequestExecutor` is the server half of the service protocol —
it owns one connection's worker state (the registry of live
:class:`~repro.monitor.online.OnlineMonitor` sessions plus the set of
dropped request ids) and turns one :class:`~repro.transport.frames.Request`
into one :class:`~repro.transport.frames.Response`.  Both transport
backends host it: :func:`service_worker_loop` runs it in a
``multiprocessing`` child for the local backend, and
:class:`~repro.transport.agent.WorkerAgent` runs one per accepted socket
for the TCP backend — so the two paths are behaviourally identical by
construction.

Formula state crossing this boundary — session snapshots, standby
blobs, shard-task carried dicts — is always *materialized*: the hot
loop's columnar residual representation (intern-arena ids, see
:mod:`repro.progression.columnar`) is process-local, so snapshot frames
carry canonical ``Formula`` objects and re-intern on arrival.  A
snapshot taken from a columnar-path monitor restores bit-identically on
a worker running either path.

Every request produces exactly one response; worker-side exceptions are
captured as ``"TypeName: message"`` strings and re-raised client-side by
:func:`~repro.service.futures.raise_remote`.  The executor itself never
dies on a request failure.  ``drop`` control frames are best-effort
cancellation: a dropped request that has not executed yet is skipped and
acknowledged with a ``CancelledError`` response (so client bookkeeping
still balances); one that already ran simply completes.
"""

from __future__ import annotations

import os
import queue
import time
from collections import deque
from typing import Any

from repro.errors import MonitorError
from repro.monitor.online import OnlineMonitor
from repro.progression.budget import Budget
from repro.service.session import SessionStatus
from repro.service.tasks import (
    MonitorTask,
    SegmentPartTask,
    SegmentShardTask,
    run_monitor_task,
    run_segment_part,
    run_segment_shard,
)
from repro.transport.frames import (
    CONTROL_ID,
    DEFAULT_CODEC,
    DROP_STANDBY,
    DROPPED_BEFORE_EXECUTION,
    PROMOTE_SESSION,
    RESTORE_SESSION,
    SNAPSHOT_SESSION,
    STALE_REQUEST_PREFIX,
    STANDBY_SESSION,
    Codec,
    Request,
    Response,
    decode_frame,
    encode_response_with_fallback,
)

__all__ = ["Request", "RequestExecutor", "Response", "service_worker_loop"]


class RequestExecutor:
    """One connection's worker state and request dispatch.

    ``sessions`` maps session id to its live monitor; ``dropped`` holds
    ids cancelled by the client before execution.  Not thread-safe by
    itself — hosts must serialize :meth:`execute` calls (``drop`` may be
    called concurrently: set mutation is atomic and best-effort anyway).
    """

    def __init__(self) -> None:
        self.sessions: dict[int, OnlineMonitor] = {}
        #: Warm-standby snapshots held for sessions that live on *other*
        #: endpoints: ``(checkpoint sequence, raw snapshot payload)``,
        #: never rehydrated until a ``session_promote`` turns one into
        #: the live monitor — and only when the promote's expected
        #: sequence matches, so a stale blob is rejected, not restored.
        self.standby: dict[int, tuple[int, dict]] = {}
        self.dropped: set[int] = set()
        self.max_executed = -1
        self.pid = os.getpid()
        #: Drop acknowledgements minted by :meth:`drop` for requests
        #: whose frame has not arrived (yet, or ever — a lossy link may
        #: have eaten it).  The host flushes these to the client like any
        #: response; without them a drop racing a *lost* request would
        #: never be acknowledged and work stealing would hang on a frame
        #: the network already discarded.
        self.pending_acks: list[Response] = []
        #: Ids already answered by an immediate drop-ack: if their frame
        #: shows up later it is consumed without a second response.
        self._acked: set[int] = set()
        #: Zero-arg callable a single-threaded host installs so the
        #: *running* request's budget checkpoints can drain the inbox
        #: (how a local-backend worker learns about a mid-execution
        #: drop).  Threaded hosts (the TCP agent's reader) leave it None
        #: and call :meth:`drop` concurrently instead.
        self.poll_hook = None
        #: ``(request id, budget)`` of the currently executing request.
        self._running: tuple[int, Budget] | None = None

    def drop(self, request_id: int) -> None:
        """Mark a request id cancelled (skipped, or preempted if running).

        A drop for the *currently executing* request cancels its budget:
        the engine unwinds cooperatively within one checkpoint interval
        and the client gets a typed preempted response — not an
        abandoned worker.  Request ids on one connection arrive in
        increasing order (the service's counter is monotone and sends
        are FIFO), so a drop for an id at or below the high-water mark
        that is not running lost its race — the request already
        executed — and is discarded here rather than parked in
        ``dropped`` forever.
        """
        running = self._running
        if running is not None and running[0] == request_id:
            running[1].cancel(f"request {request_id} dropped by client")
            return
        if request_id > self.max_executed:
            self.dropped.add(request_id)
            # Ack immediately instead of waiting for the frame: on a
            # lossy link the request may never arrive, and an unacked
            # drop would stall work stealing forever.  The id stays
            # parked, so a late arrival is still skipped — silently,
            # because this ack already answered it (``_acked``).
            self._acked.add(request_id)
            self.pending_acks.append(
                Response(request_id, None, DROPPED_BEFORE_EXECUTION, self.pid)
            )

    def ingest(self, request: Request) -> bool:
        """Handle a control frame in-band; True when ``request`` still
        needs :meth:`execute` (i.e. it was not a control frame)."""
        if request.request_id == CONTROL_ID:
            # Shape-check before acting: a control frame is unauthenticated
            # input like any other, and a hostile ``drop`` payload must not
            # take the reader thread down with a TypeError.
            if request.op == "drop" and type(request.payload) is int:
                self.drop(request.payload)
            return False
        return True

    def execute(self, request: Request) -> Response | None:
        """Run one request, capturing any failure as response data.

        Returns ``None`` when the request needs no response — its id was
        already answered by an immediate drop-ack and answering again
        would put two responses for one id on the wire.

        **Idempotency fence:** request ids on one connection strictly
        increase (monotone counter + FIFO sends), so a request at or
        below ``max_executed`` can only be a frame the network
        duplicated or reordered.  It is refused with a typed
        :data:`STALE_REQUEST_PREFIX` error *without executing* — this is
        what makes a client retry after an ambiguous timeout safe:
        whichever copy arrives second is provably inert.

        Every request runs under a fresh :class:`Budget` whose cancel
        flag a concurrent (or polled) ``drop`` can set — publishing
        ``_running`` *before* updating ``max_executed`` closes the race
        where a drop arriving between the two would be discarded as
        already-executed while the request is in fact still running.
        """
        if request.request_id <= self.max_executed:
            self.dropped.discard(request.request_id)
            if request.request_id in self._acked:
                self._acked.discard(request.request_id)
                return None
            return Response(
                request.request_id,
                None,
                f"{STALE_REQUEST_PREFIX} {request.request_id} "
                f"(high-water mark {self.max_executed}): duplicate or "
                f"reordered frame refused without executing",
                self.pid,
                op=request.op,
            )
        budget = Budget(poll_hook=self.poll_hook)
        self._running = (request.request_id, budget)
        try:
            self.max_executed = max(self.max_executed, request.request_id)
            if request.request_id in self.dropped:
                self.dropped.discard(request.request_id)
                if request.request_id in self._acked:
                    self._acked.discard(request.request_id)
                    return None
                return Response(
                    request.request_id,
                    None,
                    DROPPED_BEFORE_EXECUTION,
                    self.pid,
                    op=request.op,
                )
            if self._acked or self.dropped:
                # Remaining parked ids below the new high-water mark can
                # only reach us through the fence above, which consumes
                # them without dispatch; stop tracking them here so a
                # lost frame's id does not linger forever.
                self._acked = {r for r in self._acked if r > self.max_executed}
                self.dropped = {r for r in self.dropped if r > self.max_executed}
            try:
                payload = _dispatch(
                    request.op,
                    request.payload,
                    self.sessions,
                    self.standby,
                    budget=budget,
                )
                return Response(request.request_id, payload, None, self.pid, op=request.op)
            except Exception as exc:  # noqa: BLE001 — the executor must survive any request
                return Response(
                    request.request_id,
                    None,
                    f"{type(exc).__name__}: {exc}",
                    self.pid,
                    op=request.op,
                )
        finally:
            self._running = None


def service_worker_loop(inbox, response_writer, codec: Codec = DEFAULT_CODEC) -> None:
    """Local-backend worker body: frames off a queue until the sentinel.

    The inbox carries encoded frames (``None`` is the shutdown
    sentinel); responses go back over this worker's *private* pipe as
    frames too — one writer per pipe means no lock is shared between
    workers, so a worker dying mid-write (OOM-kill, crash) can never
    wedge the others' responses; the parent just sees EOF on this pipe.

    Between executions the loop drains everything already queued, so
    ``drop`` control frames overtake the requests queued behind the one
    currently running — that is what makes client-side ``cancel()``
    effective for a backlog, despite the FIFO inbox.
    """
    executor = RequestExecutor()
    pending: deque[Request] = deque()
    running = True

    def ingest(item) -> bool:
        if item is None:
            return False
        request = decode_frame(item, codec)
        if executor.ingest(request):
            pending.append(request)
        elif executor.pending_acks:
            # A drop for a frame that never arrived mints its ack right
            # here — ship it now, there may be nothing else to trigger it.
            acks, executor.pending_acks = executor.pending_acks, []
            for ack in acks:
                _send_response(response_writer, ack, codec)
        return True

    def poll_inbox() -> None:
        # Budget checkpoints call this mid-execution: the single-threaded
        # loop would otherwise only see a drop for the *running* request
        # after it finished, making client-side cancel useless for the
        # one request it most wants to stop.
        nonlocal running
        while running:
            try:
                item = inbox.get_nowait()
            except queue.Empty:
                return
            running = ingest(item)

    executor.poll_hook = poll_inbox

    while running or pending:
        if running and not pending:
            running = ingest(inbox.get())
        while running:  # opportunistic drain: pick up drops/sentinel early
            try:
                item = inbox.get_nowait()
            except queue.Empty:
                break
            running = ingest(item)
        if not pending:
            continue
        response = executor.execute(pending.popleft())
        if response is None:
            continue  # already answered by an immediate drop-ack
        if not _send_response(response_writer, response, codec):
            break  # parent closed/broke the pipe: exit the loop
    response_writer.close()


def _send_response(response_writer, response: Response, codec: Codec) -> bool:
    """Frame and ship one response; False only when the pipe is gone.

    The unpicklable-payload fallback lives in
    :func:`~repro.transport.frames.encode_response_with_fallback`:
    a response that cannot cross the codec fails only its own request,
    not the worker and every session on it.
    """
    frame = encode_response_with_fallback(response, codec)
    try:
        response_writer.send_bytes(frame)
    except Exception:  # noqa: BLE001 — pipe itself is gone
        return False
    return True


def _session(sessions: dict[int, OnlineMonitor], session_id: int) -> OnlineMonitor:
    try:
        return sessions[session_id]
    except KeyError:
        raise MonitorError(f"unknown session {session_id}") from None


def _dispatch(
    op: str,
    payload: Any,
    sessions: dict[int, OnlineMonitor],
    standby: dict[int, dict] | None = None,
    budget: Budget | None = None,
) -> Any:
    if standby is None:
        standby = {}
    if op == "monitor":
        task: MonitorTask = payload
        return run_monitor_task(task, budget)
    if op == "shard":
        shard: SegmentShardTask = payload
        return run_segment_shard(shard, budget)
    if op == "segment_part":
        part: SegmentPartTask = payload
        return run_segment_part(part, budget)
    if op == "session_open":
        session_id, formula, epsilon, kwargs = payload
        if session_id in sessions:
            raise MonitorError(f"session {session_id} already open")
        sessions[session_id] = OnlineMonitor(formula, epsilon, **kwargs)
        return session_id
    if op == "session_observe":
        session_id, events = payload
        monitor = _session(sessions, session_id)
        # Events validate independently, like repeated in-process
        # ``observe`` calls: a rejected event must not drop the valid
        # events batched after it.  All rejections surface in one error.
        rejected: list[str] = []
        for process, local_time, props, deltas in events:
            try:
                monitor.observe(process, local_time, props, deltas)
            except MonitorError as exc:
                rejected.append(str(exc))
        if rejected:
            suffix = "" if len(rejected) == 1 else f" (+{len(rejected) - 1} more)"
            raise MonitorError(
                f"{len(rejected)}/{len(events)} observed event(s) rejected: "
                f"{rejected[0]}{suffix}"
            )
        return len(events)
    if op == "session_advance":
        session_id, boundary = payload
        monitor = _session(sessions, session_id)
        if boundary == monitor.frontier and boundary > 0:
            # Memoized exactly-once reply: the frontier already moved
            # here, so this is a *retried* advance whose first response
            # was lost in transit (the retry carries a fresh request id,
            # so the connection-level fence cannot catch it).  Re-answer
            # with the verdicts decided so far — the same cumulative set
            # ``advance_to`` returned — instead of re-executing or
            # surfacing the in-process boundary error.
            return monitor.current_verdicts
        return monitor.advance_to(boundary, budget=budget)
    if op == "session_poll":
        (session_id,) = payload
        monitor = _session(sessions, session_id)
        return SessionStatus(
            verdicts=monitor.current_verdicts,
            pending=monitor.pending,
            undecided_residuals=monitor.undecided_residuals,
            finished=monitor.finished,
        )
    if op == "session_finish":
        (session_id,) = payload
        result = _session(sessions, session_id).finish(budget=budget)
        del sessions[session_id]
        return result
    if op == "session_close":
        (session_id,) = payload
        return sessions.pop(session_id, None) is not None
    if op == SNAPSHOT_SESSION:
        # Serialize-but-keep: the origin copy stays live until the client
        # confirms the restore landed, so a failed hop (dead target,
        # refused restore) leaves the stream usable where it was.  The
        # client discards the origin copy (``session_close``) only after
        # the target acknowledged.
        (session_id,) = payload
        return _session(sessions, session_id).snapshot()
    if op == RESTORE_SESSION:
        session_id, snapshot = payload
        if session_id in sessions:
            raise MonitorError(f"session {session_id} already open")
        sessions[session_id] = OnlineMonitor.restore(snapshot)
        # A restored primary supersedes any standby copy still held here
        # (e.g. recovery fell back to a client-side restore onto the
        # standby endpoint): keeping the stale blob would shadow later
        # replicas of the same stream.
        standby.pop(session_id, None)
        return session_id
    if op == STANDBY_SESSION:
        session_id, sequence, snapshot = payload
        if session_id in sessions:
            raise MonitorError(
                f"session {session_id} is live on this endpoint; "
                f"it cannot also hold the standby"
            )
        standby[session_id] = (sequence, snapshot)  # replaces any older replica
        return session_id
    if op == PROMOTE_SESSION:
        session_id, expected_sequence = payload
        if session_id in sessions:
            raise MonitorError(f"session {session_id} already open")
        try:
            sequence, snapshot = standby.pop(session_id)
        except KeyError:
            raise MonitorError(f"no standby for session {session_id}") from None
        if sequence != expected_sequence:
            # The blob predates the client's last applied checkpoint (a
            # refresh was lost or never sent): rehydrating it would
            # silently shed every event between the two, since the
            # replay journal only covers the newer one.  Popped either
            # way — a stale blob has no future use.
            raise MonitorError(
                f"standby for session {session_id} is stale: holds "
                f"checkpoint {sequence}, promote expects {expected_sequence}"
            )
        sessions[session_id] = OnlineMonitor.restore(snapshot)
        return session_id
    if op == DROP_STANDBY:
        (session_id,) = payload
        return standby.pop(session_id, None) is not None
    if op == "ping":
        return (os.getpid(), len(sessions))
    if op == "echo":
        return payload
    if op == "sleep":  # test/ops support: occupy the executor
        time.sleep(min(float(payload), 60.0))
        return payload
    if op == "crash":  # test/ops support: simulate peer death mid-request
        os._exit(int(payload) if payload else 17)
    raise MonitorError(f"unknown service op {op!r}")
