"""Worker-side task payloads and entry points for the monitor service.

Everything here must be importable and picklable: these functions run in
``multiprocessing`` worker processes, so the task payloads carry only
plain data — computations (events pickle through
:func:`~repro.distributed.event.make_event`), formulas (value-equal
dataclasses), and keyword dictionaries.

(Re-homed from ``repro.parallel.worker``, which keeps re-exporting these
names for existing callers.)
"""

from __future__ import annotations

import inspect
import os
import time
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.distributed.computation import DistributedComputation
from repro.distributed.event import Event
from repro.monitor.factory import make_monitor
from repro.monitor.smt_monitor import PipelineState, SmtMonitor
from repro.monitor.verdicts import MonitorResult
from repro.mtl.ast import Formula
from repro.progression.budget import Budget


@dataclass
class MonitorTask:
    """One batch item: monitor ``computation`` with a freshly built engine."""

    index: int
    kind: str
    formula: Formula
    kwargs: dict[str, Any]
    computation: DistributedComputation


@dataclass
class BatchItem:
    """The outcome of one batch item (result, captured error, or cancel)."""

    index: int
    result: MonitorResult | None
    error: str | None
    seconds: float
    worker: int
    cancelled: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class SegmentShardTask:
    """Resume the segment pipeline from ``start`` with a residual shard."""

    computation: DistributedComputation
    formula: Formula
    kwargs: dict[str, Any]
    carried: dict[Formula, int]
    anchor: int | None
    base_valuation: dict[str, float]
    frontier: dict[str, frozenset[str]]
    start: int


@dataclass
class SegmentPartTask:
    """One root-frontier slice of a single segment's enumeration.

    Carries everything :func:`run_segment_part` needs to enumerate its
    ``branches`` of the DFS root frontier independently: the segment's
    events and happened-before topology (as predecessor bitmasks — the
    :class:`FrozenTopology` shim reconstructs the enumeration view), the
    carried residual column in its packed wire form (see
    :func:`~repro.progression.columnar.pack_carried_column` — sliced,
    never materialized), and the clamp/boundary window of the segment.
    """

    events: list[Event]
    predecessor_masks: list[int]
    epsilon: int
    carried_column: Any
    anchor: int | None
    boundary: int
    clamp_lo: int | None
    clamp_hi: int | None
    max_traces: int | None
    base_valuation: dict[str, float] | None
    frontier_props: dict[str, frozenset[str]] | None
    timestamp_samples: int | None
    branches: tuple[tuple[int, int], ...]


class FrozenTopology:
    """A happened-before view rebuilt from shipped predecessor masks.

    Quacks like :class:`~repro.distributed.hb.HappenedBeforeView` as far
    as the DFS enumerator cares: ``events`` and ``predecessors_mask``.
    """

    __slots__ = ("events", "_masks")

    def __init__(self, events: Sequence[Event], masks: Sequence[int]) -> None:
        self.events = list(events)
        self._masks = list(masks)

    def predecessors_mask(self, index: int) -> int:
        return self._masks[index]


def _accepts_budget(run) -> bool:
    """True when a monitor's ``run`` can take the ``budget`` kwarg."""
    try:
        params = inspect.signature(run).parameters
    except (TypeError, ValueError):  # builtins/extensions without signatures
        return False
    return "budget" in params or any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()
    )


def run_monitor_task(task: MonitorTask, budget: Budget | None = None) -> BatchItem:
    """Monitor one computation, capturing any failure as data.

    A poisoned computation (inconsistent log, an engine limit such as the
    fast monitor's event cap, a malformed formula) must not kill the
    batch: the exception is returned in the item, never raised — a
    preempted run surfaces as a ``PreemptedError: ...`` item error.
    """
    started = time.perf_counter()
    try:
        engine = make_monitor(
            task.formula, task.kind, computation=task.computation, **task.kwargs
        )
        if budget is None or not _accepts_budget(engine.run):
            # Registered third-party engines may predate the budget kwarg
            # (the Monitor protocol only requires run(computation)); such
            # a run is simply not preemptible mid-flight.
            result = engine.run(task.computation)
        else:
            result = engine.run(task.computation, budget=budget)
        error = None
    except Exception as exc:  # noqa: BLE001 — per-item isolation is the point
        result = None
        error = f"{type(exc).__name__}: {exc}"
    return BatchItem(
        index=task.index,
        result=result,
        error=error,
        seconds=time.perf_counter() - started,
        worker=os.getpid(),
    )


def run_segment_shard(
    task: SegmentShardTask, budget: Budget | None = None
) -> MonitorResult:
    """Continue the segment pipeline for one shard of carried residuals.

    Trace caching is enabled: shards of the same computation enumerate
    identical segment traces, so a worker that processes several shards
    (or repeated runs of one computation) reuses the enumeration instead
    of redoing it (see :mod:`repro.encoding.trace_cache`).
    """
    engine = SmtMonitor(task.formula, cache_traces=True, **task.kwargs)
    state = PipelineState(
        carried=dict(task.carried),
        anchor=task.anchor,
        base_valuation=dict(task.base_valuation),
        frontier=dict(task.frontier),
    )
    return engine.run_from(task.computation, state, start=task.start, budget=budget)


def run_segment_part(task: SegmentPartTask, budget: Budget | None = None):
    """Enumerate one slice of a segment's root frontier on a worker.

    Returns ``(packed_column, traces_enumerated, truncated, preempted)``
    — the progressed residual column re-packed for the trip home, plus
    the flags the merge folds together.  Worker-side preemption (the
    request's budget cancelled by a client drop) surfaces as
    ``preempted=True`` with partial counts, never as an abandoned worker.
    """
    from repro.encoding.verdict_enumerator import enumerate_segment_outcomes
    from repro.progression.columnar import pack_carried_column, unpack_carried_column

    hb = FrozenTopology(task.events, task.predecessor_masks)
    pairs = unpack_carried_column(task.carried_column)
    outcome = enumerate_segment_outcomes(
        hb,
        task.epsilon,
        pairs,
        task.anchor,
        boundary=task.boundary,
        clamp_lo=task.clamp_lo,
        clamp_hi=task.clamp_hi,
        max_traces=task.max_traces,
        base_valuation=task.base_valuation,
        frontier_props=task.frontier_props,
        timestamp_samples=task.timestamp_samples,
        budget=budget,
        root_branches=task.branches,
    )
    column = pack_carried_column(list(outcome.id_counts().items()))
    return (column, outcome.traces_enumerated, outcome.truncated, outcome.preempted)
