"""Worker-side task payloads and entry points for the monitor service.

Everything here must be importable and picklable: these functions run in
``multiprocessing`` worker processes, so the task payloads carry only
plain data — computations (events pickle through
:func:`~repro.distributed.event.make_event`), formulas (value-equal
dataclasses), and keyword dictionaries.

(Re-homed from ``repro.parallel.worker``, which keeps re-exporting these
names for existing callers.)
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any

from repro.distributed.computation import DistributedComputation
from repro.monitor.factory import make_monitor
from repro.monitor.smt_monitor import PipelineState, SmtMonitor
from repro.monitor.verdicts import MonitorResult
from repro.mtl.ast import Formula


@dataclass
class MonitorTask:
    """One batch item: monitor ``computation`` with a freshly built engine."""

    index: int
    kind: str
    formula: Formula
    kwargs: dict[str, Any]
    computation: DistributedComputation


@dataclass
class BatchItem:
    """The outcome of one batch item (result, captured error, or cancel)."""

    index: int
    result: MonitorResult | None
    error: str | None
    seconds: float
    worker: int
    cancelled: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class SegmentShardTask:
    """Resume the segment pipeline from ``start`` with a residual shard."""

    computation: DistributedComputation
    formula: Formula
    kwargs: dict[str, Any]
    carried: dict[Formula, int]
    anchor: int | None
    base_valuation: dict[str, float]
    frontier: dict[str, frozenset[str]]
    start: int


def run_monitor_task(task: MonitorTask) -> BatchItem:
    """Monitor one computation, capturing any failure as data.

    A poisoned computation (inconsistent log, an engine limit such as the
    fast monitor's event cap, a malformed formula) must not kill the
    batch: the exception is returned in the item, never raised.
    """
    started = time.perf_counter()
    try:
        engine = make_monitor(
            task.formula, task.kind, computation=task.computation, **task.kwargs
        )
        result = engine.run(task.computation)
        error = None
    except Exception as exc:  # noqa: BLE001 — per-item isolation is the point
        result = None
        error = f"{type(exc).__name__}: {exc}"
    return BatchItem(
        index=task.index,
        result=result,
        error=error,
        seconds=time.perf_counter() - started,
        worker=os.getpid(),
    )


def run_segment_shard(task: SegmentShardTask) -> MonitorResult:
    """Continue the segment pipeline for one shard of carried residuals.

    Trace caching is enabled: shards of the same computation enumerate
    identical segment traces, so a worker that processes several shards
    (or repeated runs of one computation) reuses the enumeration instead
    of redoing it (see :mod:`repro.encoding.trace_cache`).
    """
    engine = SmtMonitor(task.formula, cache_traces=True, **task.kwargs)
    state = PipelineState(
        carried=dict(task.carried),
        anchor=task.anchor,
        base_valuation=dict(task.base_valuation),
        frontier=dict(task.frontier),
    )
    return engine.run_from(task.computation, state, start=task.start)
