"""Client-side handles for requests in flight on the service pool."""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro import errors
from repro.errors import ServiceError


def raise_remote(error: str) -> None:
    """Re-raise a worker-side error string as its original exception class.

    Workers serialise failures as ``"TypeName: message"``.  Known
    :class:`~repro.errors.ReproError` subclasses re-raise as themselves so
    callers keep the same ``except MonitorError`` behaviour they would have
    against an in-process engine; everything else (and malformed strings)
    becomes :class:`~repro.errors.ServiceError`.
    """
    name, _, message = error.partition(": ")
    exc_type = getattr(errors, name, None)
    if isinstance(exc_type, type) and issubclass(exc_type, errors.ReproError):
        raise exc_type(message or error)
    raise ServiceError(error)


class MonitorFuture:
    """Result of one asynchronous service request.

    Resolved by the service's dispatcher thread when the owning worker
    responds.  ``result()`` blocks; ``done()`` polls.  Transport failures
    and worker-side exceptions both surface from ``result()`` (see
    :func:`raise_remote` for the mapping).
    """

    __slots__ = (
        "_event",
        "_payload",
        "_error",
        "_callbacks",
        "_lock",
        "_cancelled",
        "cancel_hook",
        "task_index",
        "request_id",
    )

    #: The error string a client-side cancellation resolves with.
    CANCEL_MESSAGE = "CancelledError: cancelled by caller"

    def __init__(self) -> None:
        self._event = threading.Event()
        self._payload: Any = None
        self._error: str | None = None
        self._callbacks: list[Callable[[], None]] = []
        self._lock = threading.Lock()
        self._cancelled = False
        #: Set by the service: best-effort propagation of a cancel to the
        #: worker (a ``drop`` control frame).
        self.cancel_hook: Callable[[], None] | None = None
        #: Set by batch submits: the ``BatchItem.index`` this request
        #: carries, so ``gather`` can label a future that never reached
        #: the worker (cancelled, transport failure) consistently with
        #: the items that did.
        self.task_index: int | None = None
        #: The wire request id the service allocated for this future —
        #: lets an abandoning caller (session recovery on a lossy link)
        #: settle the outstanding books without waiting for an ack that
        #: may never arrive.
        self.request_id: int | None = None

    def done(self) -> bool:
        """True once the worker has responded (successfully or not)."""
        return self._event.is_set()

    @property
    def error(self) -> str | None:
        """The captured error string, or None (only meaningful once done)."""
        return self._error

    @property
    def cancelled(self) -> bool:
        """True when :meth:`cancel` won the race against the response."""
        return self._cancelled

    def cancel(self) -> bool:
        """Cancel the request client-side (best-effort worker-side).

        A future that has not resolved yet resolves immediately with
        :class:`~repro.errors.CancelledError`; the worker is asked (via
        the service's drop frame) to skip the request if it has not
        executed it.  Returns True when the cancel won — an
        already-resolved future cannot be cancelled (False), and
        repeated cancels keep returning the first outcome.
        """
        with self._lock:
            if self._event.is_set():
                return self._cancelled
            hook = self.cancel_hook
        self.resolve(None, self.CANCEL_MESSAGE)
        won = self._error == self.CANCEL_MESSAGE
        if won:
            self._cancelled = True
            if hook is not None:
                try:
                    hook()
                except Exception:  # noqa: BLE001 — cancel must stay best-effort
                    pass
        return won

    def result(self, timeout: float | None = None) -> Any:
        """Block until resolved; return the payload or raise the error."""
        if not self._event.wait(timeout):
            raise ServiceError(f"request did not complete within {timeout}s")
        if self._error is not None:
            raise_remote(self._error)
        return self._payload

    def forward_to(self, other: "MonitorFuture") -> None:
        """Mirror this future's outcome into ``other`` once resolved.

        Used by work stealing: the caller keeps blocking on the original
        future while its request is transparently re-executed elsewhere —
        the replacement request's future forwards here.
        """
        self.add_done_callback(lambda: other.resolve(self._payload, self._error))

    # -- dispatcher side -----------------------------------------------------------

    def add_done_callback(self, callback: Callable[[], None]) -> None:
        """Run ``callback`` when resolved (immediately if already done)."""
        with self._lock:
            if not self._event.is_set():
                self._callbacks.append(callback)
                return
        callback()

    def resolve(self, payload: Any, error: str | None = None) -> None:
        """Set the outcome exactly once and fire callbacks."""
        with self._lock:
            if self._event.is_set():
                return
            self._payload = payload
            self._error = error
            callbacks, self._callbacks = self._callbacks, []
            self._event.set()
        for callback in callbacks:
            callback()
