"""Client-side handles for requests in flight on the service pool."""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro import errors
from repro.errors import ServiceError


def raise_remote(error: str) -> None:
    """Re-raise a worker-side error string as its original exception class.

    Workers serialise failures as ``"TypeName: message"``.  Known
    :class:`~repro.errors.ReproError` subclasses re-raise as themselves so
    callers keep the same ``except MonitorError`` behaviour they would have
    against an in-process engine; everything else (and malformed strings)
    becomes :class:`~repro.errors.ServiceError`.
    """
    name, _, message = error.partition(": ")
    exc_type = getattr(errors, name, None)
    if isinstance(exc_type, type) and issubclass(exc_type, errors.ReproError):
        raise exc_type(message or error)
    raise ServiceError(error)


class MonitorFuture:
    """Result of one asynchronous service request.

    Resolved by the service's dispatcher thread when the owning worker
    responds.  ``result()`` blocks; ``done()`` polls.  Transport failures
    and worker-side exceptions both surface from ``result()`` (see
    :func:`raise_remote` for the mapping).
    """

    __slots__ = ("_event", "_payload", "_error", "_callbacks", "_lock")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._payload: Any = None
        self._error: str | None = None
        self._callbacks: list[Callable[[], None]] = []
        self._lock = threading.Lock()

    def done(self) -> bool:
        """True once the worker has responded (successfully or not)."""
        return self._event.is_set()

    @property
    def error(self) -> str | None:
        """The captured error string, or None (only meaningful once done)."""
        return self._error

    def result(self, timeout: float | None = None) -> Any:
        """Block until resolved; return the payload or raise the error."""
        if not self._event.wait(timeout):
            raise ServiceError(f"request did not complete within {timeout}s")
        if self._error is not None:
            raise_remote(self._error)
        return self._payload

    # -- dispatcher side -----------------------------------------------------------

    def add_done_callback(self, callback: Callable[[], None]) -> None:
        """Run ``callback`` when resolved (immediately if already done)."""
        with self._lock:
            if not self._event.is_set():
                self._callbacks.append(callback)
                return
        callback()

    def resolve(self, payload: Any, error: str | None = None) -> None:
        """Set the outcome exactly once and fire callbacks."""
        with self._lock:
            if self._event.is_set():
                return
            self._payload = payload
            self._error = error
            callbacks, self._callbacks = self._callbacks, []
            self._event.set()
        for callback in callbacks:
            callback()
