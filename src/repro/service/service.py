"""The long-lived monitoring service: one pool, two surfaces.

The paper's motivating deployment is *continuous* monitoring of live
blockchain feeds.  The one-shot entry points (fork a pool per call,
monitor, tear the pool down) pay the fork tax on every batch and cannot
hold streaming state at all.  :class:`MonitorService` is the server core
that fixes both:

* **Pool lifecycle** — ``workers`` processes are spawned once (at
  construction) and reused for every subsequent call; ``close()`` (or the
  context manager) drains and joins them.  Each worker has a private FIFO
  inbox; one shared outbox feeds a dispatcher thread in the client
  process that resolves :class:`~repro.service.futures.MonitorFuture`\\ s.

* **Async batch API** — :meth:`submit` ships one computation and returns
  a future immediately; :meth:`submit_many` fans a sequence out;
  :meth:`map` blocks and aggregates a
  :class:`~repro.service.reports.BatchReport` (ordered items, per-item
  error capture) compatible with the existing bench wiring.
  Backpressure: at most ``max_in_flight`` batch items may be unresolved —
  further submits block until the pool catches up, so an unbounded
  producer cannot exhaust memory.

* **Session API** — :meth:`open_session` pins a live
  :class:`~repro.monitor.online.OnlineMonitor` stream to a worker
  (sharded by session id, or by an explicit affinity ``key``) and returns
  a :class:`~repro.service.session.Session` handle
  (``observe``/``advance_to``/``poll``/``finish``).  Many sessions
  multiplex over the same pool and progress in parallel; requests for one
  session stay strictly ordered on its worker's inbox.

Usage::

    with MonitorService(workers=4) as svc:
        report = svc.map(computations, formula=spec)      # batch surface
        session = svc.open_session(spec, epsilon=2)       # streaming surface
        session.observe("apricot", 3, {"apr.escrow(alice)"})
        session.advance_to(10)
        result = session.finish()
"""

from __future__ import annotations

import itertools
import multiprocessing
import threading
import time
import zlib
from multiprocessing import connection
from typing import Sequence

from repro.distributed.computation import DistributedComputation
from repro.errors import MonitorError, ReproError, ServiceError
from repro.mtl.ast import Formula
from repro.service.futures import MonitorFuture
from repro.service.reports import BatchReport
from repro.service.session import Session
from repro.service.tasks import BatchItem, MonitorTask, SegmentShardTask
from repro.service.worker import Request, Response, service_worker_loop


def default_workers() -> int:
    """Pool size when the caller does not pick one (bounded: oversubscribing
    a monitoring pool buys nothing)."""
    import os

    return max(1, min(8, os.cpu_count() or 1))


class MonitorService:
    """A persistent monitoring pool with batch and session surfaces.

    Parameters
    ----------
    workers:
        Pool size; ``None`` picks :func:`default_workers`.
    formula:
        Default specification for :meth:`submit`/:meth:`map` (overridable
        per call).  Sessions always pass their formula explicitly.
    monitor:
        Default engine kind for batch items — any
        :func:`~repro.monitor.factory.make_monitor` kind including
        ``"auto"`` (workers re-select per item from its computation).
    max_in_flight:
        Backpressure bound on unresolved batch items; ``None`` derives
        ``workers * 4``.
    **monitor_kwargs:
        Default engine knobs for batch items (``segments=``, budgets, ...),
        merged with per-call overrides.
    """

    def __init__(
        self,
        workers: int | None = None,
        formula: Formula | None = None,
        monitor: str = "auto",
        max_in_flight: int | None = None,
        **monitor_kwargs,
    ) -> None:
        if workers is not None and workers < 1:
            raise MonitorError(f"workers must be >= 1, got {workers}")
        self._workers = workers if workers is not None else default_workers()
        if max_in_flight is None:
            max_in_flight = self._workers * 4
        if max_in_flight < 1:
            raise MonitorError(f"max_in_flight must be >= 1, got {max_in_flight}")
        self._max_in_flight = max_in_flight
        self._formula = formula
        self._kind = monitor
        self._monitor_kwargs = dict(monitor_kwargs)

        self._closed = False
        self._lock = threading.Lock()
        self._request_ids = itertools.count()
        self._session_ids = itertools.count()
        self._futures: dict[int, MonitorFuture] = {}
        self._request_to_worker: dict[int, int] = {}
        self._outstanding = [0] * self._workers
        self._dead = [False] * self._workers
        self._sessions: dict[int, Session] = {}
        self._inflight = threading.BoundedSemaphore(max_in_flight)

        ctx = multiprocessing.get_context()
        self._inboxes = []
        self._processes = []
        self._response_readers = {}  # reader connection -> worker index
        for index in range(self._workers):
            inbox = ctx.Queue()
            # One response pipe per worker: a single writer per pipe means
            # no lock is shared across workers, so one worker dying
            # mid-write cannot wedge the others (a shared queue could).
            reader, writer = ctx.Pipe(duplex=False)
            process = ctx.Process(
                target=service_worker_loop,
                args=(index, inbox, writer),
                daemon=True,
                name=f"monitor-service-{index}",
            )
            process.start()
            writer.close()  # child keeps its copy; EOF then tracks its life
            self._inboxes.append(inbox)
            self._processes.append(process)
            self._response_readers[reader] = index
        self._dispatcher = threading.Thread(
            target=self._drain_responses, name="monitor-service-dispatcher", daemon=True
        )
        self._dispatcher.start()

    # -- introspection -------------------------------------------------------------

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def max_in_flight(self) -> int:
        return self._max_in_flight

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def open_sessions(self) -> int:
        """Live sessions currently tracked by this client."""
        return len(self._sessions)

    def worker_pids(self) -> list[int]:
        """PID of every pool worker (round-trips a ping through each inbox)."""
        futures = [self._send(index, "ping", None) for index in range(self._workers)]
        return [future.result()[0] for future in futures]

    # -- async batch surface --------------------------------------------------------

    def submit(
        self,
        computation: DistributedComputation,
        formula: Formula | None = None,
        index: int = 0,
        **overrides,
    ) -> MonitorFuture:
        """Ship one computation to the pool; resolves to a :class:`BatchItem`.

        Blocks only when ``max_in_flight`` batch items are already
        unresolved (backpressure).  Engine failures are captured *inside*
        the item (``BatchItem.error``), so ``result()`` raises only on
        transport-level trouble.
        """
        self._ensure_open()
        task = MonitorTask(
            index=index,
            kind=overrides.pop("monitor", self._kind),
            formula=self._resolve_formula(formula),
            kwargs={**self._monitor_kwargs, **overrides},
            computation=computation,
        )
        self._inflight.acquire()
        try:
            future = self._send(self._pick_worker(), "monitor", task)
        except BaseException:
            self._inflight.release()
            raise
        future.add_done_callback(self._inflight.release)
        return future

    def submit_many(
        self,
        computations: Sequence[DistributedComputation],
        formula: Formula | None = None,
        **overrides,
    ) -> list[MonitorFuture]:
        """Submit a batch; futures keep input order (``BatchItem.index`` too)."""
        return [
            self.submit(computation, formula, index=index, **overrides)
            for index, computation in enumerate(computations)
        ]

    def map(
        self,
        computations: Sequence[DistributedComputation],
        formula: Formula | None = None,
        **overrides,
    ) -> BatchReport:
        """Monitor every computation and aggregate a :class:`BatchReport`.

        The blocking counterpart of :meth:`submit_many`: items come back
        in input order with per-item error capture; wall-clock spans the
        whole batch including queueing.
        """
        started = time.perf_counter()
        futures = self.submit_many(computations, formula, **overrides)
        items: list[BatchItem] = []
        for index, future in enumerate(futures):
            try:
                items.append(future.result())
            except ReproError as exc:  # transport failure: keep the batch shape
                items.append(
                    BatchItem(
                        index=index,
                        result=None,
                        error=f"{type(exc).__name__}: {exc}",
                        seconds=0.0,
                        worker=0,
                    )
                )
        wall = time.perf_counter() - started
        items.sort(key=lambda item: item.index)
        return BatchReport(items=items, workers=self._workers, wall_seconds=wall)

    def submit_shard(self, task: SegmentShardTask) -> MonitorFuture:
        """Ship one segment-parallel shard; resolves to a
        :class:`~repro.monitor.verdicts.MonitorResult`.  Used by the
        :class:`~repro.parallel.ParallelMonitor` compatibility wrapper."""
        self._ensure_open()
        return self._send(self._pick_worker(), "shard", task)

    # -- session surface ------------------------------------------------------------

    def open_session(
        self,
        formula: Formula,
        epsilon: int,
        key: str | None = None,
        **monitor_kwargs,
    ) -> Session:
        """Open one live monitoring stream, pinned to a pool worker.

        Sessions shard across workers by id (or by ``zlib.crc32(key)``
        when an affinity ``key`` is given — streams sharing a key land on
        the same worker).  ``monitor_kwargs`` go to the worker-side
        :class:`~repro.monitor.online.OnlineMonitor`
        (``max_traces_per_segment=``, ``backend=``, ...).
        """
        self._ensure_open()
        session_id = next(self._session_ids)
        if key is None:
            worker_index = session_id % self._workers
        else:
            worker_index = zlib.crc32(key.encode()) % self._workers
        self._send(
            worker_index,
            "session_open",
            (session_id, formula, epsilon, dict(monitor_kwargs)),
        ).result()
        session = Session(self, session_id, worker_index, formula, epsilon)
        self._sessions[session_id] = session
        return session

    def _forget_session(self, session_id: int) -> None:
        self._sessions.pop(session_id, None)

    def _send_session(self, worker_index: int, op: str, payload) -> MonitorFuture:
        self._ensure_open()
        return self._send(worker_index, op, payload)

    # -- lifecycle ------------------------------------------------------------------

    def close(self, timeout: float = 10.0) -> None:
        """Drain the pool and shut it down (idempotent).

        Workers finish everything already queued (FIFO) before they see
        the shutdown sentinel, *bounded by* ``timeout`` seconds: a
        backlog that outlives the deadline is cut short (workers are
        terminated) and its unresolved futures fail with
        :class:`~repro.errors.ServiceError`.  Callers who must not lose
        queued work should ``result()`` their futures before closing, or
        pass a ``timeout`` sized to the backlog.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for index, inbox in enumerate(self._inboxes):
            if not self._dead[index]:
                inbox.put(None)
        deadline = time.monotonic() + timeout
        for process in self._processes:
            process.join(max(0.1, deadline - time.monotonic()))
            if process.is_alive():
                process.terminate()
                process.join(1.0)
        # Workers close their pipe ends as they exit; the dispatcher
        # drains any buffered responses, sees EOF everywhere, and stops.
        self._dispatcher.join(timeout)
        with self._lock:
            leftovers = list(self._futures.values())
            self._futures.clear()
            self._request_to_worker.clear()
        for future in leftovers:
            future.resolve(None, "ServiceError: service closed before completion")
        for inbox in self._inboxes:
            inbox.close()
        self._sessions.clear()

    def __enter__(self) -> "MonitorService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- plumbing -------------------------------------------------------------------

    def _resolve_formula(self, formula: Formula | None) -> Formula:
        formula = formula if formula is not None else self._formula
        if formula is None:
            raise MonitorError(
                "no formula: pass formula=... to the call or to MonitorService()"
            )
        return formula

    def _ensure_open(self) -> None:
        if self._closed:
            raise ServiceError("monitor service is closed")

    def _pick_worker(self) -> int:
        """Least-outstanding live worker (ties break toward lower index)."""
        with self._lock:
            alive = [i for i in range(self._workers) if not self._dead[i]]
            if not alive:
                raise ServiceError("all service workers have died")
            return min(alive, key=lambda i: self._outstanding[i])

    def _send(self, worker_index: int, op: str, payload) -> MonitorFuture:
        future = MonitorFuture()
        with self._lock:
            if self._closed:
                raise ServiceError("monitor service is closed")
            if self._dead[worker_index]:
                raise ServiceError(f"service worker {worker_index} has died")
            request_id = next(self._request_ids)
            self._futures[request_id] = future
            self._request_to_worker[request_id] = worker_index
            self._outstanding[worker_index] += 1
        self._inboxes[worker_index].put(Request(request_id, op, payload))
        return future

    def _drain_responses(self) -> None:
        """Multiplex every worker's response pipe until all close.

        ``connection.wait`` wakes on readable data *or* EOF; EOF means the
        worker exited (cleanly at shutdown, or killed) and immediately
        retires it via :meth:`_retire_worker` — buffered responses are
        always drained before the EOF is seen, so queued work that
        finished before a shutdown still resolves.
        """
        while self._response_readers:
            ready = connection.wait(list(self._response_readers), timeout=0.5)
            if not ready:
                self._reap_dead_workers()
                continue
            for reader in ready:
                try:
                    response: Response = reader.recv()
                except (EOFError, OSError):
                    self._retire_worker(reader)
                    continue
                with self._lock:
                    future = self._futures.pop(response.request_id, None)
                    worker_index = self._request_to_worker.pop(response.request_id, None)
                    if worker_index is not None:
                        self._outstanding[worker_index] -= 1
                if future is not None:
                    future.resolve(response.payload, response.error)

    def _retire_worker(self, reader) -> None:
        """Drop a worker whose response pipe hit EOF; fail its futures."""
        index = self._response_readers.pop(reader, None)
        reader.close()
        if index is None or self._closed:
            return
        self._fail_worker_futures([index])

    def _reap_dead_workers(self) -> None:
        """Belt-and-braces liveness poll behind the EOF-based detection."""
        if self._closed:
            return
        newly_dead = [
            index
            for index, process in enumerate(self._processes)
            if not self._dead[index] and not process.is_alive()
        ]
        if newly_dead:
            self._fail_worker_futures(newly_dead)

    def _fail_worker_futures(self, worker_indices: list[int]) -> None:
        """Mark workers dead and fail their outstanding futures.

        Without this, a worker lost to an OOM-kill or crash would leave
        its callers blocked in ``result()`` forever; instead their
        futures fail with :class:`~repro.errors.ServiceError` and the
        worker is excluded from further placement.
        """
        orphans: list[tuple[int, MonitorFuture]] = []
        with self._lock:
            for index in worker_indices:
                self._dead[index] = True
            for request_id, worker_index in list(self._request_to_worker.items()):
                if worker_index in worker_indices:
                    future = self._futures.pop(request_id, None)
                    del self._request_to_worker[request_id]
                    self._outstanding[worker_index] -= 1
                    if future is not None:
                        orphans.append((worker_index, future))
        for worker_index, future in orphans:
            future.resolve(
                None,
                f"ServiceError: service worker {worker_index} died before responding",
            )
