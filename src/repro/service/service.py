"""The long-lived monitoring service: one pool, two surfaces.

The paper's motivating deployment is *continuous* monitoring of live
blockchain feeds.  The one-shot entry points (fork a pool per call,
monitor, tear the pool down) pay the fork tax on every batch and cannot
hold streaming state at all.  :class:`MonitorService` is the server core
that fixes both:

* **Pool lifecycle over pluggable transports** — each worker endpoint is
  a :class:`~repro.transport.Transport` (the default ``workers=N``
  spawns N local processes; ``endpoints=[...]`` mixes local workers and
  remote :class:`~repro.transport.agent.WorkerAgent` hosts in one pool).
  The service itself speaks only the transport interface: requests go
  out through :meth:`~repro.transport.Connection.send`, responses come
  back on backend reader threads, and liveness (process health locally,
  heartbeat recency over TCP) is the backend's verdict — the service
  just reaps endpoints whose connection reports dead and fails their
  futures with :class:`~repro.errors.ServiceError`.

* **Async batch API** — :meth:`submit` ships one computation and returns
  a future immediately; :meth:`submit_many` fans a sequence out;
  :meth:`map` blocks and aggregates a
  :class:`~repro.service.reports.BatchReport` (ordered items, per-item
  error capture, cancelled items marked).  Backpressure: at most
  ``max_in_flight`` batch items may be unresolved — further submits
  block until the pool catches up.  Futures support best-effort
  :meth:`~repro.service.futures.MonitorFuture.cancel`.

* **Session API** — :meth:`open_session` pins a live
  :class:`~repro.monitor.online.OnlineMonitor` stream to a worker
  (sharded by session id, by an explicit affinity ``key``, or by
  ``placement="least_loaded"`` from per-endpoint outstanding-request
  depth) and returns a :class:`~repro.service.session.Session` handle.
  Requests for one session stay strictly ordered on its endpoint.
  Placement is no longer frozen at open time: :meth:`migrate` moves a
  live stream to another endpoint mid-feed (worker-side
  snapshot/restore), and ``rebalance="threshold"|"periodic"`` starts a
  :class:`~repro.service.rebalance.Rebalancer` that does it
  automatically for skewed feed mixes.

Usage::

    with MonitorService(workers=4) as svc:                # local pool
        report = svc.map(computations, formula=spec)      # batch surface
        session = svc.open_session(spec, epsilon=2)       # streaming surface
        session.observe("apricot", 3, {"apr.escrow(alice)"})
        session.advance_to(10)
        result = session.finish()

    MonitorService(endpoints=["local", "tcp://10.0.0.7:7701"])  # mixed pool
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
import zlib
from typing import Sequence

from repro.distributed.computation import DistributedComputation
from repro.errors import CancelledError, MonitorError, ReproError, ServiceError
from repro.mtl.ast import Formula
from repro.retry import REDIAL_POLICY, RetryPolicy
from repro.service.durability import CheckpointConfig, resolve_checkpoint
from repro.service.futures import MonitorFuture
from repro.service.reports import BatchReport
from repro.service.session import Session
from repro.service.tasks import (
    BatchItem,
    MonitorTask,
    SegmentPartTask,
    SegmentShardTask,
)
from repro.transport import (
    CONTROL_ID,
    DROPPED_BEFORE_EXECUTION,
    Connection,
    LocalTransport,
    Request,
    Response,
    Transport,
    resolve_transport,
)

#: Batch ops whose requests may be *stolen* — re-executed on another
#: endpoint when the one they were queued on dies or stays overloaded.
#: Only pure computations qualify: session ops mutate worker-held stream
#: state, so replaying one elsewhere would corrupt the stream (sessions
#: have their own recovery — checkpoints and journal replay).
#: ``segment_part`` is pure by construction — it enumerates a shipped
#: slice of one segment's root frontier against a shipped residual
#: column, touching no worker-held state.
STEALABLE_OPS = ("monitor", "shard", "segment_part")

#: Registry re-dial backoff: first retry delay and its cap, seconds.
#: Aliases into the shared :data:`repro.retry.REDIAL_POLICY` — the
#: service, the agent, and any future redialer back off identically.
REGISTRY_REDIAL_MIN = REDIAL_POLICY.base_delay
REGISTRY_REDIAL_MAX = REDIAL_POLICY.max_delay

#: How often the liveness thread polls each connection's own verdict.
LIVENESS_POLL_SECONDS = 0.25

#: Gray-failure quarantine hysteresis: a quarantined endpoint must
#: answer this many consecutive probe pings, each within the probe
#: timeout, before it is readmitted to placement.  One slow ping resets
#: the streak — flapping links stay quarantined.
QUARANTINE_PROBES = 3
QUARANTINE_PROBE_TIMEOUT = 2.0

#: Session placement policies accepted by :meth:`MonitorService.open_session`.
PLACEMENTS = ("hash", "least_loaded")


def default_workers() -> int:
    """Pool size when the caller does not pick one (bounded: oversubscribing
    a monitoring pool buys nothing)."""
    import os

    return max(1, min(8, os.cpu_count() or 1))


class MonitorService:
    """A persistent monitoring pool with batch and session surfaces.

    Parameters
    ----------
    workers:
        Pool size for the default all-local pool; ``None`` picks
        :func:`default_workers`.  Ignored (must match, if given) when
        ``endpoints`` is passed.
    formula:
        Default specification for :meth:`submit`/:meth:`map` (overridable
        per call).  Sessions always pass their formula explicitly.
    monitor:
        Default engine kind for batch items — any
        :func:`~repro.monitor.factory.make_monitor` kind including
        ``"auto"`` (workers re-select per item from its computation).
    max_in_flight:
        Backpressure bound on unresolved batch items; ``None`` derives
        ``workers * 4``.
    endpoints:
        Explicit worker endpoints: each entry is a
        :class:`~repro.transport.Transport`, ``"local"``, or a TCP
        address (``"tcp://host:port"``).  Backends mix freely.
    registry:
        A :class:`~repro.cluster.ClusterRegistry` address
        (``"tcp://host:port"``): subscribe to live membership and resize
        the pool as agents come and go — a **join** adds the agent as a
        new endpoint (and kicks the rebalancer: a placement event), a
        graceful **leave** drains the endpoint through
        :meth:`retire_endpoint` (sessions migrate off, queued batch work
        is stolen back, nothing is lost), and a missed-heartbeat
        **death** falls through to the usual recovery path (work
        stealing, durable-session restore).  Combines with ``workers``/
        ``endpoints``: those are the static floor of the pool (default:
        none — the pool starts empty and grows as members announce).
    token:
        Shared auth token for TCP endpoints and the registry connection
        (HMAC challenge/response at connection open — see
        :mod:`repro.transport.auth`).  ``None`` resolves
        ``REPRO_AGENT_TOKEN``; the empty string disables auth explicitly.
    heartbeat_interval:
        Heartbeat cadence for TCP endpoints given as *string* specs
        (including endpoints absorbed from registry joins), seconds.
        ``None`` keeps the transport default (1 s).  Endpoints passed as
        ready :class:`~repro.transport.Transport` objects keep their own
        cadence.  Fault-schedule tests run this at millisecond scale so
        silence is detected in tens of milliseconds, not seconds.
    liveness_timeout:
        Silence threshold before a string-spec TCP endpoint is declared
        dead, seconds.  ``None`` keeps the transport default (5 s).
    auto_calibrate:
        Run a budgeted engine-crossover probe at startup and apply the
        measured thresholds to the ``kind="auto"`` factory (see
        :mod:`repro.monitor.calibration`).  Runs *before* local workers
        spawn so they inherit the thresholds; remote agents keep their
        own (calibrate on their host via ``REPRO_FACTORY_CALIBRATION``).
    auto_calibrate_budget:
        Wall-clock budget per calibration probe, seconds.
    rebalance:
        Live-rebalancing policy: ``"threshold"``, ``"periodic"``, or any
        callable ``policy(view)`` (see :mod:`repro.service.rebalance`).
        ``None`` (default) keeps placement frozen at open time; manual
        :meth:`migrate` works either way.
    rebalance_interval:
        Cadence of rebalance cycles, seconds.
    rebalance_threshold:
        Outstanding-depth divergence that triggers the ``"threshold"``
        policy.
    rebalance_steal_threshold:
        Outstanding-depth divergence beyond which the rebalancer also
        *steals* queued batch work from a persistently overloaded
        endpoint (see :meth:`steal_queued`).  ``None`` (default)
        disables live stealing; dead-endpoint stealing is always on.
    checkpoint:
        Default durability policy for sessions: ``None`` (default) opens
        plain non-durable sessions; ``True`` checkpoints at the default
        cadence; a dict or :class:`~repro.service.durability.CheckpointConfig`
        picks the cadence/standby mode.  Overridable per
        :meth:`open_session` call.
    **monitor_kwargs:
        Default engine knobs for batch items (``segments=``, budgets, ...),
        merged with per-call overrides.
    """

    def __init__(
        self,
        workers: int | None = None,
        formula: Formula | None = None,
        monitor: str = "auto",
        max_in_flight: int | None = None,
        endpoints: Sequence[Transport | str] | None = None,
        registry: str | None = None,
        token: str | None = None,
        heartbeat_interval: float | None = None,
        liveness_timeout: float | None = None,
        auto_calibrate: bool = False,
        auto_calibrate_budget: float = 1.0,
        rebalance=None,
        rebalance_interval: float | None = None,
        rebalance_threshold: int | None = None,
        rebalance_steal_threshold: int | None = None,
        checkpoint: bool | dict | CheckpointConfig | None = None,
        **monitor_kwargs,
    ) -> None:
        # Rebalance/durability arguments are validated before any worker
        # spawns: a typo'd policy must not pay (then tear down) a pool start.
        self._checkpoint = resolve_checkpoint(checkpoint)
        if rebalance_steal_threshold is not None and rebalance_steal_threshold < 1:
            raise MonitorError(
                f"rebalance_steal_threshold must be >= 1, got "
                f"{rebalance_steal_threshold}"
            )
        rebalance_policy = None
        if rebalance is not None:
            from repro.service.rebalance import (
                OUTSTANDING_THRESHOLD,
                REBALANCE_INTERVAL,
                resolve_policy,
            )

            rebalance_policy = resolve_policy(
                rebalance,
                rebalance_threshold
                if rebalance_threshold is not None
                else OUTSTANDING_THRESHOLD,
            )
            if rebalance_interval is None:
                rebalance_interval = REBALANCE_INTERVAL
            if rebalance_interval <= 0:
                raise MonitorError(
                    f"rebalance interval must be > 0, got {rebalance_interval}"
                )
        elif (
            rebalance_interval is not None
            or rebalance_threshold is not None
            or rebalance_steal_threshold is not None
        ):
            raise MonitorError(
                "rebalance_interval/rebalance_threshold/rebalance_steal_threshold "
                "need a rebalance policy"
            )

        # TCP liveness cadence for endpoints given as *string* specs —
        # here, from add_endpoint, and from registry join events.  Ready
        # Transport objects keep whatever cadence they were built with.
        self._heartbeat_interval = heartbeat_interval
        self._liveness_timeout = liveness_timeout
        if endpoints is not None:
            transports = [
                resolve_transport(
                    spec,
                    token,
                    heartbeat_interval=heartbeat_interval,
                    liveness_timeout=liveness_timeout,
                )
                for spec in endpoints
            ]
            if not transports and registry is None:
                raise MonitorError("endpoints must name at least one worker")
            if workers is not None and workers != len(transports):
                raise MonitorError(
                    f"workers={workers} contradicts the {len(transports)} endpoints"
                )
        else:
            if workers is not None and workers < 1:
                raise MonitorError(f"workers must be >= 1, got {workers}")
            if workers is None and registry is not None:
                count = 0  # elastic-only pool: every endpoint comes from members
            else:
                count = workers if workers is not None else default_workers()
            transports = [LocalTransport() for _ in range(count)]
        self._workers = len(transports)
        self._token = token
        if max_in_flight is None:
            max_in_flight = max(4, self._workers * 4)
        if max_in_flight < 1:
            raise MonitorError(f"max_in_flight must be >= 1, got {max_in_flight}")
        self._max_in_flight = max_in_flight
        self._formula = formula
        self._kind = monitor
        self._monitor_kwargs = dict(monitor_kwargs)

        self.calibration_report: dict | None = None
        self._calibration_path: str | None = None
        if auto_calibrate:
            # Before any local worker starts, so the pool inherits the
            # measured thresholds whatever the start method: forked
            # children copy the applied table directly, spawned children
            # re-import the factory and pick the report up through the
            # calibration env hook set below.
            import json
            import os
            import tempfile

            from repro.monitor.calibration import run_calibration
            from repro.monitor.factory import CALIBRATION_ENV_VAR, apply_calibration

            self.calibration_report = run_calibration(
                quick=True, repeats=1, budget=auto_calibrate_budget
            )
            apply_calibration(self.calibration_report["thresholds"])
            handle = tempfile.NamedTemporaryFile(
                "w", prefix="repro-calibration-", suffix=".json", delete=False
            )
            with handle:
                json.dump(self.calibration_report, handle)
            self._calibration_path = handle.name
            os.environ[CALIBRATION_ENV_VAR] = handle.name

        self._closed = False
        self._lock = threading.Lock()
        self._request_ids = itertools.count()
        self._session_ids = itertools.count()
        self._futures: dict[int, MonitorFuture] = {}
        self._request_to_worker: dict[int, int] = {}
        # Work-stealing state: ``_stealable`` keeps the (op, payload) of
        # every outstanding *pure* batch request so it can be re-sent to
        # another endpoint; ``_stealing`` marks request ids whose drop
        # frame is in flight to a live-but-overloaded endpoint — their
        # dropped-before-execution ack triggers the resubmit.
        self._stealable: dict[int, tuple[str, object]] = {}
        self._stealing: set[int] = set()
        self._steals = 0
        self._outstanding = [0] * self._workers
        self._dead = [False] * self._workers
        self._retired = [False] * self._workers
        # Gray-failure quarantine: flagged endpoints are excluded from
        # all placement (like retiring ones) but their connection stays
        # open — sessions still need it to snapshot/migrate off, and the
        # liveness loop probes it for readmission.
        self._quarantined = [False] * self._workers
        self._quarantine_reasons: dict[int, str] = {}
        self._probe_futures: dict[int, tuple[MonitorFuture, float]] = {}
        self._probe_streak: dict[int, int] = {}
        self._sessions: dict[int, Session] = {}
        self._inflight = threading.BoundedSemaphore(max_in_flight)
        # Serializes pool-shape changes (add/retire): reservations and
        # connection installs must land in index order.  Never nests
        # inside self._lock (membership holds it *around* short _lock
        # sections and the blocking transport open).
        self._membership_lock = threading.Lock()
        self._registry = None
        self._registry_spec = registry
        self._registry_redial_lock = threading.Lock()
        self._membership_events: queue.Queue = queue.Queue()
        self._membership_thread: threading.Thread | None = None

        self._connections: list[Connection] = []
        self._send_locks = [threading.Lock() for _ in transports]
        try:
            for index, transport in enumerate(transports):
                self._connections.append(
                    transport.open(
                        self._make_on_response(index),
                        self._make_on_disconnect(index),
                    )
                )
        except BaseException:
            # Any spawn/connect failure (not just ServiceError — queue and
            # pipe creation raise raw OSError under fd pressure) must tear
            # down the workers already opened, or they leak unjoinable.
            for connection in self._connections:
                connection.close(timeout=1.0)
            self._cleanup_calibration_artifacts()
            raise
        self._liveness_stop = threading.Event()
        self._liveness = threading.Thread(
            target=self._liveness_loop, name="monitor-service-liveness", daemon=True
        )
        self._liveness.start()

        self.rebalancer = None
        if rebalance_policy is not None:
            from repro.service.rebalance import Rebalancer

            try:
                self.rebalancer = Rebalancer(
                    self,
                    policy=rebalance_policy,
                    interval=rebalance_interval,
                    steal_threshold=rebalance_steal_threshold,
                ).start()
            except BaseException:
                self.close(timeout=1.0)
                raise

        if registry is not None:
            from repro.cluster import RegistryClient

            try:
                self._membership_thread = threading.Thread(
                    target=self._membership_loop,
                    name="monitor-service-membership",
                    daemon=True,
                )
                self._membership_thread.start()
                self._registry = RegistryClient.connect(
                    registry,
                    token=token,
                    on_event=self._on_membership_event,
                    on_lost=self._on_registry_lost,
                )
                # watch() returns the snapshot the event stream continues
                # from, so members present before we subscribed and members
                # joining after are absorbed by the same path, exactly once.
                for member in self._registry.watch():
                    self._absorb_member(member)
            except BaseException:
                self.close(timeout=1.0)
                raise

    # -- introspection -------------------------------------------------------------

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def max_in_flight(self) -> int:
        return self._max_in_flight

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def open_sessions(self) -> int:
        """Live sessions currently tracked by this client."""
        return len(self._sessions)

    @property
    def steals(self) -> int:
        """Batch requests transparently re-placed on another endpoint so
        far (dead-endpoint work stealing plus :meth:`steal_queued`)."""
        with self._lock:
            return self._steals

    def endpoints(self) -> list[str]:
        """Endpoint description of every pool worker, by index."""
        return [connection.endpoint for connection in self._connections]

    def endpoint(self, worker_index: int) -> str:
        return self._connections[worker_index].endpoint

    def outstanding(self) -> list[int]:
        """Per-endpoint outstanding-request depth (the placement signal)."""
        with self._lock:
            return list(self._outstanding)

    def dead_endpoints(self) -> list[bool]:
        """Per-endpoint unusability flags (reaped endpoints stay dead).

        True also for endpoints that are *retiring* (draining toward a
        graceful leave) or *quarantined* (gray-failing: partitioned or
        slow, placement-excluded until probes readmit them) — everything
        that keys placement off this signal (standby replicas, rebalance
        targets) must treat those exactly like dead ones: never put
        anything new there.
        """
        with self._lock:
            installed = len(self._connections)
            return [
                dead or retired or quarantined or index >= installed
                for index, (dead, retired, quarantined) in enumerate(
                    zip(self._dead, self._retired, self._quarantined)
                )
            ]

    def quarantined_endpoints(self) -> list[bool]:
        """Per-endpoint quarantine flags (subset of :meth:`dead_endpoints`)."""
        with self._lock:
            return list(self._quarantined)

    def live_sessions(self) -> list[Session]:
        """The sessions currently tracked by this client (rebalancer input)."""
        with self._lock:
            return list(self._sessions.values())

    def worker_pids(self) -> list[int]:
        """PID of every pool worker (round-trips a ping through each endpoint)."""
        futures = [
            self._send(index, "ping", None)
            for index in range(len(self._connections))
        ]
        return [future.result()[0] for future in futures]

    # -- async batch surface --------------------------------------------------------

    def submit(
        self,
        computation: DistributedComputation,
        formula: Formula | None = None,
        index: int = 0,
        **overrides,
    ) -> MonitorFuture:
        """Ship one computation to the pool; resolves to a :class:`BatchItem`.

        Blocks only when ``max_in_flight`` batch items are already
        unresolved (backpressure).  Engine failures are captured *inside*
        the item (``BatchItem.error``), so ``result()`` raises only on
        transport-level trouble.  The returned future supports
        best-effort :meth:`~repro.service.futures.MonitorFuture.cancel`.
        """
        self._ensure_open()
        task = MonitorTask(
            index=index,
            kind=overrides.pop("monitor", self._kind),
            formula=self._resolve_formula(formula),
            kwargs={**self._monitor_kwargs, **overrides},
            computation=computation,
        )
        self._inflight.acquire()
        try:
            future = self._send(self._pick_worker(), "monitor", task)
        except BaseException:
            self._inflight.release()
            raise
        future.task_index = index
        future.add_done_callback(self._inflight.release)
        return future

    def submit_many(
        self,
        computations: Sequence[DistributedComputation],
        formula: Formula | None = None,
        **overrides,
    ) -> list[MonitorFuture]:
        """Submit a batch; futures keep input order (``BatchItem.index`` too)."""
        return [
            self.submit(computation, formula, index=index, **overrides)
            for index, computation in enumerate(computations)
        ]

    def map(
        self,
        computations: Sequence[DistributedComputation],
        formula: Formula | None = None,
        **overrides,
    ) -> BatchReport:
        """Monitor every computation and aggregate a :class:`BatchReport`.

        The blocking counterpart of :meth:`submit_many`: items come back
        in input order with per-item error capture (cancelled futures
        become cancelled items); wall-clock spans the whole batch
        including queueing.
        """
        started = time.perf_counter()
        futures = self.submit_many(computations, formula, **overrides)
        return self._gather(futures, started)

    def gather(self, futures: Sequence[MonitorFuture]) -> BatchReport:
        """Block on a batch of :meth:`submit` futures and aggregate them.

        The tail half of :meth:`map`, usable directly when futures were
        handed out first (e.g. so some could be
        :meth:`~repro.service.futures.MonitorFuture.cancel`\\ led):
        items come back ordered by ``BatchItem.index``, cancelled futures
        become cancelled items, and wall-clock spans this call.
        """
        return self._gather(list(futures), time.perf_counter())

    def _gather(self, futures: list[MonitorFuture], started: float) -> BatchReport:
        items: list[BatchItem] = []
        for position, future in enumerate(futures):
            try:
                items.append(future.result())
            except ReproError as exc:  # transport failure: keep the batch shape
                index = future.task_index if future.task_index is not None else position
                items.append(
                    BatchItem(
                        index=index,
                        result=None,
                        error=f"{type(exc).__name__}: {exc}",
                        seconds=0.0,
                        worker=0,
                        cancelled=isinstance(exc, CancelledError) or future.cancelled,
                    )
                )
        wall = time.perf_counter() - started
        items.sort(key=lambda item: item.index)
        return BatchReport(items=items, workers=self._workers, wall_seconds=wall)

    def submit_shard(self, task: SegmentShardTask) -> MonitorFuture:
        """Ship one segment-parallel shard; resolves to a
        :class:`~repro.monitor.verdicts.MonitorResult`.  Used by the
        :class:`~repro.parallel.ParallelMonitor` compatibility wrapper."""
        self._ensure_open()
        return self._send(self._pick_worker(), "shard", task)

    def submit_segment_part(self, task: SegmentPartTask) -> MonitorFuture:
        """Ship one root-frontier slice of a single segment's enumeration.

        Resolves to the ``(packed column, traces, truncated, preempted)``
        tuple of :func:`~repro.service.tasks.run_segment_part`.  This is
        the fan-out primitive behind intra-segment parallel enumeration
        (see :func:`~repro.encoding.verdict_enumerator.partitioned_segment_outcomes`);
        like batch monitoring it is pure, so it participates in work
        stealing.
        """
        self._ensure_open()
        return self._send(self._pick_worker(), "segment_part", task)

    # -- session surface ------------------------------------------------------------

    def open_session(
        self,
        formula: Formula,
        epsilon: int,
        key: str | None = None,
        placement: str = "hash",
        checkpoint: bool | dict | CheckpointConfig | None = None,
        call_policy: RetryPolicy | None = None,
        **monitor_kwargs,
    ) -> Session:
        """Open one live monitoring stream, pinned to a pool worker.

        Placement policies:

        * ``"hash"`` (default) — shard by session id, or by
          ``zlib.crc32(key)`` when an affinity ``key`` is given (streams
          sharing a key land on the same worker).
        * ``"least_loaded"`` — pin to the live endpoint with the fewest
          outstanding requests at open time (skewed feed mixes stop
          piling onto one worker).  Incompatible with ``key``: an
          affinity key *is* a placement.

        ``monitor_kwargs`` go to the worker-side
        :class:`~repro.monitor.online.OnlineMonitor`
        (``max_traces_per_segment=``, ``backend=``, ...).

        ``checkpoint`` makes the session *durable* (periodic worker-side
        checkpoints plus a client-side replay journal, so a worker death
        recovers transparently instead of failing the stream — see
        :mod:`repro.service.durability`): ``None`` inherits the
        service-level default, ``False`` forces a plain session, ``True``
        / dict / :class:`~repro.service.durability.CheckpointConfig`
        picks a policy for this session alone.

        ``call_policy`` (a :class:`~repro.retry.RetryPolicy` with a
        ``timeout``) bounds every synchronising round-trip of the
        session and arms the gray-failure fence: a call that times out
        is cancelled worker-side and retried only when the worker
        *proves* it never executed (see
        :meth:`Session._fence_slow_call <repro.service.session.Session>`).
        ``None`` keeps the historical block-until-answered behaviour.
        """
        self._ensure_open()
        if checkpoint is None:
            config = self._checkpoint
        else:
            config = resolve_checkpoint(checkpoint)
        if placement not in PLACEMENTS:
            raise MonitorError(
                f"unknown placement {placement!r}; known: {', '.join(PLACEMENTS)}"
            )
        if key is not None and placement == "least_loaded":
            raise MonitorError("pass either an affinity key or placement='least_loaded'")
        session_id = next(self._session_ids)
        if placement == "least_loaded":
            worker_index = self._pick_worker()
        else:
            # Hash placement shards over the *live* endpoints in index
            # order: with a static, healthy pool this is exactly the old
            # ``id % workers``; with an elastic pool it skips dead and
            # retiring slots without re-sharding what already landed.
            with self._lock:
                candidates = [
                    i
                    for i in range(len(self._connections))
                    if not self._dead[i]
                    and not self._retired[i]
                    and not self._quarantined[i]
                ]
            if not candidates:
                raise ServiceError("all service workers have died")
            if key is not None:
                worker_index = candidates[zlib.crc32(key.encode()) % len(candidates)]
            else:
                worker_index = candidates[session_id % len(candidates)]
        self._send(
            worker_index,
            "session_open",
            (session_id, formula, epsilon, dict(monitor_kwargs)),
        ).result()
        session = Session(
            self,
            session_id,
            worker_index,
            formula,
            epsilon,
            monitor_kwargs=monitor_kwargs,
            checkpoint=config,
            call_policy=call_policy,
        )
        with self._lock:
            self._sessions[session_id] = session
        return session

    def migrate(self, session: Session, endpoint: int | str) -> None:
        """Move a live session to another pool endpoint, mid-stream.

        ``endpoint`` is a worker index or an endpoint description from
        :meth:`endpoints` (``"local[3]"``, ``"tcp://host:7701"``).  The
        hop is the worker-side snapshot/restore pair behind
        :meth:`Session.migrate <repro.service.session.Session.migrate>`:
        verdicts are unaffected, ordering is preserved, and a failed hop
        leaves the stream usable on its origin endpoint.  This is the
        manual counterpart of the automatic
        :class:`~repro.service.rebalance.Rebalancer` policies.
        """
        self._ensure_open()
        session.migrate(self._resolve_endpoint_index(endpoint))

    def _resolve_endpoint_index(self, endpoint: int | str) -> int:
        if isinstance(endpoint, int):
            if not 0 <= endpoint < len(self._connections):
                raise MonitorError(
                    f"no endpoint {endpoint} in a pool of {len(self._connections)}"
                )
            return endpoint
        descriptions = self.endpoints()
        matches = [i for i, desc in enumerate(descriptions) if desc == endpoint]
        if not matches:
            raise MonitorError(
                f"no endpoint {endpoint!r} in this pool; known: {descriptions}"
            )
        # An address can repeat across an agent's lifetimes (die, rejoin):
        # the old slot stays as a dead tombstone, so prefer a usable match.
        with self._lock:
            for index in matches:
                if (
                    not self._dead[index]
                    and not self._retired[index]
                    and not self._quarantined[index]
                ):
                    return index
        return matches[-1]

    # -- live membership ------------------------------------------------------------

    def add_endpoint(self, spec: Transport | str, token: str | None = None) -> int:
        """Grow the pool with one more endpoint, live; returns its index.

        The new endpoint joins placement immediately: ``least_loaded``
        picks it while it is the quietest, hash placement folds it into
        the live-candidate ring, and a running rebalancer is kicked so a
        skewed pool reflows onto it without waiting for the next interval
        tick.  Existing sessions and queued work are untouched.  This is
        what a registry **join** event calls; it is equally usable
        directly.  ``token`` defaults to the service-wide one.
        """
        self._ensure_open()
        transport = resolve_transport(
            spec,
            token if token is not None else self._token,
            heartbeat_interval=self._heartbeat_interval,
            liveness_timeout=self._liveness_timeout,
        )
        with self._membership_lock:
            with self._lock:
                if self._closed:
                    raise ServiceError("monitor service is closed")
                # Reserve the slot first: the connection's callbacks carry
                # this index, so the index-parallel state must exist before
                # the transport can possibly fire them.
                index = self._workers
                self._workers += 1
                self._outstanding.append(0)
                self._dead.append(False)
                self._retired.append(False)
                self._quarantined.append(False)
                self._send_locks.append(threading.Lock())
            installed = threading.Event()
            on_response = self._make_on_response(index)
            on_disconnect = self._make_on_disconnect(index)

            def guarded_response(response: Response) -> None:
                installed.wait()
                on_response(response)

            def guarded_disconnect() -> None:
                # A connection may lose its peer between open() returning
                # and the install below (heartbeat races are real): hold
                # the report until the slot is fully wired.
                installed.wait()
                on_disconnect()

            try:
                connection = transport.open(guarded_response, guarded_disconnect)
            except BaseException:
                with self._lock:
                    # Unwind the reservation: the membership lock is still
                    # held, so the slot is provably the last one and no
                    # request can have targeted it (placement only sees
                    # installed connections).
                    self._workers -= 1
                    self._outstanding.pop()
                    self._dead.pop()
                    self._retired.pop()
                    self._quarantined.pop()
                    self._send_locks.pop()
                raise
            with self._lock:
                if self._closed:
                    installed.set()
                    connection.close(timeout=0.0)
                    raise ServiceError("monitor service is closed")
                self._connections.append(connection)
            installed.set()
        if self.rebalancer is not None:
            self.rebalancer.kick()
        return index

    def retire_endpoint(self, endpoint: int | str, timeout: float = 30.0) -> None:
        """Drain one endpoint out of the pool, gracefully (a planned leave).

        The inverse of a worker death: nothing is lost.  The endpoint is
        first excluded from all placement (new sessions, batch sends,
        standby replicas, rebalance targets), then

        1. live sessions pinned to it **migrate off** via the usual
           snapshot/restore hop — verdicts unaffected;
        2. queued batch work is **stolen back** (each request re-placed
           exactly once, via the proven-unstarted drop protocol);
        3. requests already executing get up to ``timeout`` seconds to
           answer, then the connection closes and the slot becomes a dead
           tombstone (its index is never reused).

        This is what a registry **leave** event calls; idempotent, and
        refused while it would leave no live endpoint to drain into.
        """
        self._ensure_open()
        index = self._resolve_endpoint_index(endpoint)
        with self._lock:
            if self._dead[index] or self._retired[index]:
                return
            others = [
                i
                for i in range(len(self._connections))
                if i != index
                and not self._dead[i]
                and not self._retired[i]
                and not self._quarantined[i]
            ]
            if not others:
                raise ServiceError(
                    f"cannot retire endpoint {index} "
                    f"({self._connections[index].endpoint}): it is the last "
                    f"live endpoint in the pool"
                )
            self._retired[index] = True
        deadline = time.monotonic() + max(0.0, timeout)
        # Sessions first (their requests keep flowing while we drain, so
        # the sooner they hop the less there is to wait out).  Loop: an
        # open_session racing the flag flip above may still land one here.
        while time.monotonic() < deadline:
            stragglers = [
                session
                for session in self.live_sessions()
                if session.worker_index == index and not session.finished
            ]
            if not stragglers:
                break
            for session in stragglers:
                try:
                    session.migrate(self._pick_worker())
                except ReproError:
                    # Mid-advance, target vanished, ...: retry next sweep;
                    # a session we cannot move by the deadline rides the
                    # connection close into the death-recovery path.
                    time.sleep(0.05)
        self.steal_queued(index)
        with self._lock:
            remaining = self._outstanding[index]
        while remaining > 0 and time.monotonic() < deadline:
            time.sleep(0.02)
            with self._lock:
                remaining = self._outstanding[index]
                if self._dead[index]:
                    break
        self._connections[index].close(max(0.1, deadline - time.monotonic()))
        # Seal the slot: marks it dead, zeroes the placement counter, and
        # settles anything that outlived the drain deadline (steal or fail
        # through the normal death bookkeeping).
        self._fail_worker_futures([index])
        if self.rebalancer is not None:
            self.rebalancer.kick()

    def quarantine_endpoint(self, endpoint: int | str, reason: str = "") -> bool:
        """Exclude a gray-failing endpoint from placement, reversibly.

        The graceful-degradation path for endpoints that are *alive but
        wrong* — partitioned one way, crawling, or repeatedly timing out
        — where killing the connection would be both premature (the link
        may heal) and lossy (sessions still need it to snapshot off).
        Unlike :meth:`retire_endpoint` this keeps the connection open
        and is **reversible**: the liveness loop probes the endpoint
        with pings and readmits it after :data:`QUARANTINE_PROBES`
        consecutive fast answers (hysteresis — one slow probe resets
        the streak).

        Sessions pinned to the endpoint are proactively migrated off on
        a background sweep (best-effort: a session mid-recovery moves
        itself), and queued batch work is stolen back.  Refused (returns
        False) when it would leave no live endpoint — degrading to a
        one-endpoint pool beats degrading to none.
        """
        self._ensure_open()
        index = self._resolve_endpoint_index(endpoint)
        with self._lock:
            if self._dead[index] or self._retired[index] or self._quarantined[index]:
                return self._quarantined[index]
            others = [
                i
                for i in range(len(self._connections))
                if i != index
                and not self._dead[i]
                and not self._retired[i]
                and not self._quarantined[i]
            ]
            if not others:
                return False
            self._quarantined[index] = True
            self._quarantine_reasons[index] = reason
            self._probe_streak[index] = 0
        try:
            self.steal_queued(index)
        except ReproError:
            pass
        threading.Thread(
            target=self._migrate_off_quarantined,
            args=(index,),
            name=f"monitor-service-quarantine-{index}",
            daemon=True,
        ).start()
        if self.rebalancer is not None:
            self.rebalancer.kick()
        return True

    def _migrate_off_quarantined(self, index: int) -> None:
        """Best-effort sweep moving live sessions off a quarantined slot.

        A session currently blocked or recovering moves itself (its
        recovery picks a healthy endpoint); this sweep covers the idle
        ones so they do not discover the gray link on their next call.
        """
        for session in self.live_sessions():
            if self._closed or not self._quarantined[index]:
                return
            if session.worker_index != index or session.finished:
                continue
            try:
                session.migrate(self._pick_worker())
            except ReproError:
                continue  # it will recover (or be re-swept) on its own

    def _readmit(self, index: int) -> None:
        with self._lock:
            if not self._quarantined[index] or self._dead[index]:
                return
            self._quarantined[index] = False
            self._quarantine_reasons.pop(index, None)
            self._probe_streak.pop(index, None)
            self._probe_futures.pop(index, None)
        if self.rebalancer is not None:
            self.rebalancer.kick()

    def _probe_quarantined(self) -> None:
        """One liveness tick of quarantine probing (readmission path)."""
        with self._lock:
            indices = [
                i
                for i, flagged in enumerate(self._quarantined)
                if flagged and not self._dead[i] and not self._retired[i]
            ]
        for index in indices:
            probe = self._probe_futures.get(index)
            if probe is not None:
                future, started = probe
                if future.done():
                    self._probe_futures.pop(index, None)
                    try:
                        future.result(timeout=0.0)
                    except ReproError:
                        self._probe_streak[index] = 0  # typed failure: not healthy
                        continue
                    streak = self._probe_streak.get(index, 0) + 1
                    self._probe_streak[index] = streak
                    if streak >= QUARANTINE_PROBES:
                        self._readmit(index)
                    continue
                if time.monotonic() - started > QUARANTINE_PROBE_TIMEOUT:
                    # Still gray: abandon this probe (its eventual answer
                    # resolves a future nobody reads) and restart the streak.
                    self._probe_futures.pop(index, None)
                    self._probe_streak[index] = 0
                continue
            try:
                future = self._send(index, "ping", None)
            except ReproError:
                self._probe_streak[index] = 0
                continue
            self._probe_futures[index] = (future, time.monotonic())

    def _find_live_index(self, address: str) -> int | None:
        with self._lock:
            for i, connection in enumerate(self._connections):
                if (
                    connection.endpoint == address
                    and not self._dead[i]
                    and not self._retired[i]
                ):
                    return i
        return None

    def _absorb_member(self, member: dict) -> None:
        """Add a registry member as an endpoint unless it already is one."""
        address = member.get("address")
        if not isinstance(address, str):
            return
        if self._find_live_index(address) is not None:
            return  # already serving (e.g. also named in ``endpoints=``)
        self.add_endpoint(address)

    def _on_membership_event(self, event: dict) -> None:
        """Registry push callback (registry reader thread): enqueue only.

        Events are applied by the membership thread so a slow reaction (a
        retire drains for seconds) never stalls the event stream or the
        registry heartbeats behind it.
        """
        if not self._closed:
            self._membership_events.put(event)

    def _membership_loop(self) -> None:
        while True:
            event = self._membership_events.get()
            if event is None:
                return
            try:
                self._apply_membership_event(event)
            except Exception:  # noqa: BLE001 — the loop must outlive one event
                # Late events race the pool's own signals (a leave for an
                # endpoint the heartbeat already reaped, a join landing
                # mid-close): the pool state they describe is simply gone.
                pass

    def _apply_membership_event(self, event: dict) -> None:
        from repro.cluster import EVENT_DEATH, EVENT_JOIN, EVENT_LEAVE

        kind = event.get("event")
        address = event.get("address")
        if self._closed or not isinstance(address, str):
            return
        if kind == EVENT_JOIN:
            self._absorb_member(event)
        elif kind == EVENT_LEAVE:
            index = self._find_live_index(address)
            if index is not None:
                self.retire_endpoint(index)
        elif kind == EVENT_DEATH:
            # The registry saw the agent's lease break — usually ahead of
            # our own heartbeat timeout.  Cut the connection now and run
            # the standard death recovery (steal queued batch work, fail
            # or restore sessions) instead of waiting out the silence.
            index = self._find_live_index(address)
            if index is not None:
                self._connections[index].close(timeout=0.0)
                self._fail_worker_futures([index])

    def _on_registry_lost(self) -> None:
        """Registry connection died: re-dial it instead of going static.

        Fired (at most once per client) from a registry client thread.
        Losing the registry must not degrade an elastic pool into a
        static one for the rest of its life — a daemon thread re-dials
        the stored address with capped exponential backoff and re-arms
        the watch, so membership events resume once the registry is back.
        Existing endpoints keep serving throughout; only *churn* is
        blind during the outage.
        """
        if self._closed:
            return
        threading.Thread(
            target=self._registry_redial_loop,
            name="monitor-service-registry-redial",
            daemon=True,
        ).start()

    def _registry_redial_loop(self) -> None:
        from repro.cluster import RegistryClient

        # One redialer at a time: a second loss callback (stale client
        # losing its heartbeat while the replacement is mid-dial) just
        # finds the lock held and leaves.
        if not self._registry_redial_lock.acquire(blocking=False):
            return
        try:

            def attempt() -> None:
                if self._closed:
                    return
                client = RegistryClient.connect(
                    self._registry_spec,
                    token=self._token,
                    on_event=self._on_membership_event,
                    on_lost=self._on_registry_lost,
                )
                if self._closed:
                    client.close()
                    return
                self._registry = client
                try:
                    # Re-absorb through the same watch-snapshot path as
                    # startup: members that joined during the outage are
                    # added, members already serving are skipped, and
                    # events after the snapshot flow to the membership
                    # thread again.
                    for member in client.watch():
                        self._absorb_member(member)
                except ReproError:
                    # Registry vanished again mid-watch.  Its on_lost may
                    # have fired while this thread holds the redial lock
                    # (so no replacement redialer could start): keep
                    # retrying here instead of returning.
                    client.close()
                    raise

            # Unbounded capped backoff (the shared redial policy);
            # ``_liveness_stop`` doubles as the close signal.
            REDIAL_POLICY.run(
                attempt, retry_on=(ReproError, OSError), stop=self._liveness_stop
            )
        except Exception:  # noqa: BLE001 — only exhausted by the stop event
            pass
        finally:
            self._registry_redial_lock.release()

    def _forget_session(self, session_id: int) -> None:
        with self._lock:
            self._sessions.pop(session_id, None)

    def _send_session(self, worker_index: int, op: str, payload) -> MonitorFuture:
        self._ensure_open()
        return self._send(worker_index, op, payload)

    # -- lifecycle ------------------------------------------------------------------

    def close(self, timeout: float = 10.0) -> None:
        """Drain the pool and shut it down (idempotent).

        Each endpoint finishes everything already sent (requests on one
        connection execute FIFO) *bounded by* ``timeout`` seconds: a
        backlog that outlives the deadline is cut short and its
        unresolved futures fail with :class:`~repro.errors.ServiceError`.
        Callers who must not lose queued work should ``result()`` their
        futures before closing, or pass a ``timeout`` sized to the
        backlog.  Remote agents outlive the service — closing only
        releases their connections.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if self.rebalancer is not None:
            # Before the connections go: a mid-close migration would race
            # the drain deadlines for no benefit.
            self.rebalancer.stop()
        if self._registry is not None:
            # Stop membership churn first: a join event landing while the
            # pool tears down would race the connection drain below.
            self._registry.close()
        if self._membership_thread is not None:
            self._membership_events.put(None)
            self._membership_thread.join(timeout=1.0)
        self._liveness_stop.set()
        deadline = time.monotonic() + timeout
        for index, connection in enumerate(self._connections):
            if self._dead[index]:
                connection.close(timeout=0.0)
            else:
                connection.close(max(0.1, deadline - time.monotonic()))
        self._liveness.join(timeout=1.0)
        with self._lock:
            leftovers = list(self._futures.values())
            self._futures.clear()
            self._request_to_worker.clear()
            self._stealable.clear()
            self._stealing.clear()
            # Every tracked request is now resolved or failed; the
            # counters must agree (the placement-signal invariant).
            self._outstanding = [0] * self._workers
            self._sessions.clear()
        for future in leftovers:
            future.resolve(None, "ServiceError: service closed before completion")
        self._cleanup_calibration_artifacts()

    def _cleanup_calibration_artifacts(self) -> None:
        """Remove the auto-calibration temp report and env hook.

        The hook exists only so workers spawned by *this* service load
        the measured thresholds; leaving it behind would silently
        calibrate every later subprocess in the host application.  The
        env var is cleared only if it still points at our file (the
        caller may have set their own since).
        """
        if self._calibration_path is None:
            return
        import os

        from repro.monitor.factory import CALIBRATION_ENV_VAR

        if os.environ.get(CALIBRATION_ENV_VAR) == self._calibration_path:
            del os.environ[CALIBRATION_ENV_VAR]
        try:
            os.remove(self._calibration_path)
        except OSError:
            pass
        self._calibration_path = None

    def __enter__(self) -> "MonitorService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- plumbing -------------------------------------------------------------------

    def _resolve_formula(self, formula: Formula | None) -> Formula:
        formula = formula if formula is not None else self._formula
        if formula is None:
            raise MonitorError(
                "no formula: pass formula=... to the call or to MonitorService()"
            )
        return formula

    def _ensure_open(self) -> None:
        if self._closed:
            raise ServiceError("monitor service is closed")

    def _pick_worker(self, avoid: int | None = None) -> int:
        """Least-outstanding live endpoint (ties break toward lower index).

        ``avoid`` steers stolen work away from the endpoint it was stolen
        from (re-queueing it behind the same backlog would defeat the
        steal) — honoured only while another live endpoint exists.
        """
        with self._lock:
            alive = [
                i
                for i in range(len(self._connections))
                if not self._dead[i]
                and not self._retired[i]
                and not self._quarantined[i]
            ]
            if not alive:
                raise ServiceError("all service workers have died")
            if avoid is not None and len(alive) > 1:
                alive = [i for i in alive if i != avoid]
            return min(alive, key=lambda i: self._outstanding[i])

    def _send(self, worker_index: int, op: str, payload) -> MonitorFuture:
        future = MonitorFuture()
        # The per-endpoint lock spans id allocation *and* the send, so
        # request ids reach one connection in increasing order even under
        # concurrent submitters — the invariant the worker's drop
        # high-water mark relies on.  It never nests inside self._lock.
        with self._send_locks[worker_index]:
            with self._lock:
                if self._closed:
                    raise ServiceError("monitor service is closed")
                if self._dead[worker_index]:
                    raise ServiceError(
                        f"service worker {worker_index} "
                        f"({self._connections[worker_index].endpoint}) has died"
                    )
                request_id = next(self._request_ids)
                future.request_id = request_id
                self._futures[request_id] = future
                self._request_to_worker[request_id] = worker_index
                self._outstanding[worker_index] += 1
                if op in STEALABLE_OPS:
                    # Kept until the response arrives, so the request can
                    # be re-sent elsewhere if this endpoint dies first.
                    self._stealable[request_id] = (op, payload)
            try:
                self._connections[worker_index].send(Request(request_id, op, payload))
            except BaseException:
                # Any send failure — transport trouble (ServiceError) or a
                # payload the codec refuses to serialize (TypeError, ...) —
                # must unwind the bookkeeping, or the leaked outstanding
                # count would bias placement against a healthy worker forever.
                with self._lock:
                    self._futures.pop(request_id, None)
                    self._stealable.pop(request_id, None)
                    if self._request_to_worker.pop(request_id, None) is not None:
                        self._outstanding[worker_index] -= 1
                raise
        future.cancel_hook = lambda: self._drop_request(worker_index, request_id)
        return future

    def _abandon_requests(self, futures) -> None:
        """Settle the books for requests nobody will wait on again.

        Session recovery on a lossy link abandons its in-flight batches:
        their frames (or their responses) may have been silently dropped,
        so waiting for acks to settle the outstanding counters could
        wait forever.  Forgetting the ids here decrements the counters
        immediately; a late response for a forgotten id is ignored by
        the dispatcher (the pop finds nothing), so books never settle
        twice.
        """
        with self._lock:
            for future in futures:
                request_id = future.request_id
                if request_id is None or self._futures.pop(request_id, None) is None:
                    continue
                self._stealable.pop(request_id, None)
                self._stealing.discard(request_id)
                worker_index = self._request_to_worker.pop(request_id, None)
                if worker_index is not None:
                    self._outstanding[worker_index] -= 1

    def _drop_request(self, worker_index: int, request_id: int) -> None:
        """Best-effort ``drop`` control frame behind ``MonitorFuture.cancel``.

        The worker skips the request if it has not executed yet and
        acknowledges with a ``CancelledError`` response either way, so
        the outstanding bookkeeping settles through the normal path.
        """
        try:
            self._connections[worker_index].send(
                Request(CONTROL_ID, "drop", request_id)
            )
        except Exception:  # noqa: BLE001 — any send failure, not just ServiceError
            # Peer gone or channel broken: reaping (or close) settles the
            # books.  A drop frame must never raise out of cancel() or
            # leave the outstanding counters depending on its delivery.
            pass

    #: Error a request resolves with when a later response on the same
    #: connection proves it will never be answered (FIFO gap).
    OVERTAKEN = (
        "ServiceError: request overtaken on its connection — "
        "its frame (or its response) was lost in transit"
    )

    def _make_on_response(self, worker_index: int):
        def on_response(response: Response) -> None:
            resteal: tuple[str, object, MonitorFuture] | None = None
            reaped: list[MonitorFuture] = []
            with self._lock:
                future = self._futures.pop(response.request_id, None)
                stealable = self._stealable.pop(response.request_id, None)
                if self._request_to_worker.pop(response.request_id, None) is not None:
                    self._outstanding[worker_index] -= 1
                # FIFO gap reaper: ids reach one connection in increasing
                # order and are answered in that order, so a response for
                # id R proves every pending id < R on this worker will
                # never be answered — its frame never arrived (the worker
                # fence now stale-rejects it if it ever does) or its
                # response died in transit.  Settle those books now: on a
                # lossy link the ack the counters would otherwise wait
                # for may simply not exist.  A late (reordered) response
                # for a reaped id finds its id already popped and is
                # ignored, so nothing settles twice.  The one response
                # that breaks the answered-in-order premise is a minted
                # drop ack: the worker emits it the moment the drop
                # control frame is ingested, jumping ahead of earlier
                # requests still queued behind the running one — it
                # proves nothing about them, so it must not reap.
                stale_ids = (
                    []
                    if response.error == DROPPED_BEFORE_EXECUTION
                    else [
                        rid
                        for rid, owner in self._request_to_worker.items()
                        if owner == worker_index and rid < response.request_id
                    ]
                )
                for rid in stale_ids:
                    stale = self._futures.pop(rid, None)
                    self._stealable.pop(rid, None)
                    self._stealing.discard(rid)
                    del self._request_to_worker[rid]
                    self._outstanding[worker_index] -= 1
                    if stale is not None:
                        reaped.append(stale)
                if response.request_id in self._stealing:
                    self._stealing.discard(response.request_id)
                    if (
                        response.error == DROPPED_BEFORE_EXECUTION
                        and stealable is not None
                        and future is not None
                        and not future.cancelled
                        and not self._closed
                    ):
                        # The drop won: the worker *proved* it never
                        # started this request, so re-executing it
                        # elsewhere cannot double-execute.  Any other
                        # response means the drop lost — the request
                        # completed where it was, resolve normally.
                        resteal = (stealable[0], stealable[1], future)
            # Overtaken requests resolve *before* the overtaking response:
            # a session's FIFO gap check runs when its synchronising call
            # returns and must already see the loss it proves.
            for stale in reaped:
                stale.resolve(None, self.OVERTAKEN)
            if resteal is not None:
                self._resteal(*resteal, avoid=worker_index)
                return
            if future is not None:
                future.resolve(response.payload, response.error)

        return on_response

    def steal_queued(self, from_index: int, limit: int | None = None) -> int:
        """Steal queued batch work off a live (overloaded) endpoint.

        Sends best-effort drop frames for the stealable (pure batch)
        requests outstanding on ``from_index``.  The worker acknowledges
        each drop either with :data:`~repro.transport.DROPPED_BEFORE_EXECUTION`
        — proof the request never started, which triggers a transparent
        resubmit to the least-loaded live endpoint — or with the real
        response, when the request executed before the drop arrived.
        Either way each request runs **exactly once**; callers blocked in
        ``result()`` never notice the hop.  Returns the number of steals
        initiated (not all of them will win their race).

        Called by the :class:`~repro.service.rebalance.Rebalancer` when
        ``rebalance_steal_threshold`` is set; safe to call directly.
        """
        self._ensure_open()
        with self._lock:
            if self._dead[from_index]:
                return 0
            candidates = sorted(
                request_id
                for request_id in self._stealable
                if self._request_to_worker.get(request_id) == from_index
                and request_id not in self._stealing
            )
            if limit is not None:
                candidates = candidates[:limit]
            self._stealing.update(candidates)
        for request_id in candidates:
            self._drop_request(from_index, request_id)
        return len(candidates)

    def _resteal(
        self, op: str, payload, original: MonitorFuture, avoid: int | None = None
    ) -> None:
        """Re-send a proven-unstarted request; chain into the original future.

        Runs outside ``self._lock`` (it sends).  When no live endpoint is
        left — or the service closed meanwhile — the original future
        fails with :class:`~repro.errors.ServiceError` instead of hanging.
        """
        try:
            replacement = self._send(self._pick_worker(avoid=avoid), op, payload)
        except BaseException as exc:  # noqa: BLE001 — the caller must unblock
            original.resolve(
                None,
                f"ServiceError: stolen request could not be re-placed: "
                f"{type(exc).__name__}: {exc}",
            )
            return
        with self._lock:
            self._steals += 1
        # A later cancel() on the original must chase the replacement,
        # not the endpoint the request was stolen from.
        original.cancel_hook = replacement.cancel
        replacement.forward_to(original)

    def _make_on_disconnect(self, worker_index: int):
        def on_disconnect() -> None:
            if not self._closed:
                self._fail_worker_futures([worker_index])

        return on_disconnect

    def _liveness_loop(self) -> None:
        """Reap endpoints whose connection reports dead.

        Backends push the fast signal themselves (pipe EOF, socket EOF,
        heartbeat timeout → ``on_disconnect``); this poll is the
        belt-and-braces sweep behind it, asking each connection's own
        :meth:`~repro.transport.Connection.alive` verdict.
        """
        while not self._liveness_stop.wait(LIVENESS_POLL_SECONDS):
            if self._closed:
                return
            newly_dead = [
                index
                for index, connection in enumerate(self._connections)
                if not self._dead[index] and not connection.alive()
            ]
            if newly_dead and not self._closed:
                self._fail_worker_futures(newly_dead)
            if not self._closed:
                self._probe_quarantined()

    def _fail_worker_futures(self, worker_indices: list[int]) -> None:
        """Mark endpoints dead; steal or fail their outstanding requests.

        Without this, a worker lost to an OOM-kill, crash, or network
        partition would leave its callers blocked in ``result()``
        forever.  Pure batch requests (``_stealable``) that *provably
        never started* are transparently re-executed on live endpoints
        instead of failing; everything else fails with
        :class:`~repro.errors.ServiceError`, and the endpoint is excluded
        from further placement.

        The idempotency guard: each connection executes FIFO in request-id
        order, and a worker ships the response for id *k* before touching
        *k+1* — reader threads drain every delivered response before
        reporting the disconnect.  So of the ids still outstanding on a
        dead connection only the **lowest** may have begun executing;
        that one is *failed*, never stolen (re-running a request that may
        have produced side effects elsewhere would double-execute it).
        Strictly higher ids never started and are safe to steal.
        """
        orphans: list[tuple[int, MonitorFuture, bool]] = []
        steals: list[tuple[str, object, MonitorFuture]] = []
        with self._lock:
            for index in worker_indices:
                self._dead[index] = True
                # Death supersedes quarantine: stop probing a tombstone.
                self._quarantined[index] = False
                self._quarantine_reasons.pop(index, None)
                self._probe_streak.pop(index, None)
                self._probe_futures.pop(index, None)
            any_alive = not all(self._dead)
            by_worker: dict[int, list[int]] = {}
            for request_id, worker_index in self._request_to_worker.items():
                if worker_index in worker_indices:
                    by_worker.setdefault(worker_index, []).append(request_id)
            for worker_index, request_ids in by_worker.items():
                request_ids.sort()
                maybe_started = request_ids[0]
                for request_id in request_ids:
                    future = self._futures.pop(request_id, None)
                    del self._request_to_worker[request_id]
                    stealable = self._stealable.pop(request_id, None)
                    self._stealing.discard(request_id)
                    if future is None:
                        continue
                    if (
                        stealable is not None
                        and any_alive
                        and request_id != maybe_started
                        and not future.cancelled
                    ):
                        steals.append((stealable[0], stealable[1], future))
                    else:
                        orphans.append(
                            (
                                worker_index,
                                future,
                                stealable is not None and request_id == maybe_started,
                            )
                        )
            for index in worker_indices:
                # A dead endpoint can never answer again, so any residue
                # here is by definition a leak — and a permanent one,
                # since reaping runs once per endpoint.  Zeroing keeps
                # the placement signal (and the rebalancer feeding on
                # it) honest whatever path dropped the pairing.
                self._outstanding[index] = 0
        for worker_index, future, guarded in orphans:
            detail = (
                " while it may have been executing (not re-run: it could "
                "double-execute)"
                if guarded
                else " before responding"
            )
            future.resolve(
                None,
                f"ServiceError: service worker {worker_index} "
                f"({self._connections[worker_index].endpoint}) died{detail}",
            )
        for op, payload, future in steals:
            self._resteal(op, payload, future)
