"""Durable sessions: checkpoint cadence and the client-side replay journal.

Migration (PR 4) made monitor state *mobile*; this module makes it
*durable*.  The pieces:

* :class:`CheckpointConfig` — how often a live session checkpoints its
  worker-side monitor state back to the client (interval in
  events-since-last-checkpoint and/or seconds), and whether it keeps a
  warm standby replica on a second endpoint.  Resolved from the
  ``MonitorService(checkpoint=...)`` / ``open_session(checkpoint=...)``
  arguments by :func:`resolve_checkpoint`.

* :class:`ReplayJournal` — the client-side record of everything the
  session did since the last *applied* checkpoint: observed events and
  successfully acknowledged ``advance_to`` boundaries, in call order.
  A checkpoint is the worker's ``session_snapshot`` payload (the same
  serialize-but-keep frame migration uses); snapshot + journal replay
  reconstructs the stream's exact state on any live endpoint, which is
  what turns worker death into a transparent restore-and-replay instead
  of a :class:`~repro.errors.ServiceError`.

The journal records *intent*, not worker acknowledgements: events enter
at ``observe`` time (before they flush), boundaries only after their
round-trip succeeded.  That asymmetry is deliberate — replay tolerates
re-observing an event the dead worker may already have consumed (the
rebuilt state starts from the snapshot, so nothing double-applies), but
an advance that never succeeded must be *retried* by the caller after
replay, not replayed as if it had.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import MonitorError

#: Default checkpoint interval in events flushed since the last applied
#: checkpoint (``MonitorService(checkpoint=True)``).
DEFAULT_EVERY_EVENTS = 64

#: Accepted values of :attr:`CheckpointConfig.standby`.
STANDBY_MODES = (False, True, "hot")

#: One observed event as the session surface carries it.
Event = "tuple[str, int, frozenset[str], dict[str, float] | None]"


@dataclass(frozen=True)
class CheckpointConfig:
    """Per-session durability policy.

    Parameters
    ----------
    every_events:
        Checkpoint after this many events have been flushed since the
        last applied checkpoint (``None`` disables the event trigger).
    every_seconds:
        Checkpoint when this much wall-clock time has passed since the
        last applied checkpoint *and* the journal is non-empty (``None``
        disables the time trigger).
    standby:
        Warm-standby replication: ``False`` (none), ``True`` (every
        checkpoint is pushed to a second live endpoint), or ``"hot"``
        (only sessions the rebalancer has marked hot keep a standby).
        With a standby, failover skips the snapshot transfer — the
        replica endpoint already holds it, so recovery is promote +
        journal replay only.
    max_recovery_attempts:
        How many consecutive restore-and-replay attempts one session
        call may make before the underlying
        :class:`~repro.errors.ServiceError` is allowed to surface
        (each attempt targets a different live endpoint pick).
    """

    every_events: int | None = DEFAULT_EVERY_EVENTS
    every_seconds: float | None = None
    standby: bool | str = False
    max_recovery_attempts: int = 3

    def __post_init__(self) -> None:
        if self.every_events is None and self.every_seconds is None:
            raise MonitorError(
                "checkpoint needs an interval: every_events and/or every_seconds"
            )
        if self.every_events is not None and self.every_events < 1:
            raise MonitorError(
                f"checkpoint every_events must be >= 1, got {self.every_events}"
            )
        if self.every_seconds is not None and self.every_seconds <= 0:
            raise MonitorError(
                f"checkpoint every_seconds must be > 0, got {self.every_seconds}"
            )
        if self.standby not in STANDBY_MODES:
            raise MonitorError(
                f"checkpoint standby must be one of {STANDBY_MODES}, "
                f"got {self.standby!r}"
            )
        if self.max_recovery_attempts < 1:
            raise MonitorError(
                "checkpoint max_recovery_attempts must be >= 1, "
                f"got {self.max_recovery_attempts}"
            )


def resolve_checkpoint(spec) -> CheckpointConfig | None:
    """Normalise a checkpoint spec: None/False, True, dict, or config."""
    if spec is None or spec is False:
        return None
    if spec is True:
        return CheckpointConfig()
    if isinstance(spec, CheckpointConfig):
        return spec
    if isinstance(spec, dict):
        try:
            return CheckpointConfig(**spec)
        except TypeError as exc:
            raise MonitorError(f"bad checkpoint spec {spec!r}: {exc}") from None
    raise MonitorError(
        f"checkpoint must be True, a dict, or a CheckpointConfig, got {spec!r}"
    )


class ReplayJournal:
    """Everything a session did since its last applied checkpoint.

    Entries are ``("observe", event)`` and ``("advance", boundary)`` in
    call order.  :meth:`mark` / :meth:`apply_checkpoint` implement the
    truncation protocol: the session records the journal length when it
    *sends* a snapshot request (every entry at or below that mark is
    ordered before the snapshot on the worker's FIFO connection, so the
    snapshot covers it) and truncates up to the mark once the snapshot
    payload arrives.
    """

    def __init__(self) -> None:
        self._entries: list[tuple[str, object]] = []
        #: The last applied checkpoint payload (an
        #: :meth:`~repro.monitor.online.OnlineMonitor.snapshot` dict),
        #: or None while the stream has never checkpointed — recovery
        #: then replays from a fresh ``session_open``.
        self.snapshot: dict | None = None
        #: Checkpoints applied so far (introspection/tests).
        self.checkpoints_applied = 0

    def __len__(self) -> int:
        return len(self._entries)

    def record_event(self, event) -> None:
        self._entries.append(("observe", event))

    def record_advance(self, boundary: int) -> None:
        self._entries.append(("advance", boundary))

    def mark(self) -> int:
        """Current journal length: the truncation point for a snapshot
        requested *now* (everything recorded so far precedes it)."""
        return len(self._entries)

    def apply_checkpoint(self, snapshot: dict, mark: int) -> None:
        """Adopt a resolved snapshot; forget the entries it covers."""
        self.snapshot = snapshot
        del self._entries[:mark]
        self.checkpoints_applied += 1

    def clear(self) -> None:
        """Release the journal's state (the stream sealed); counters stay."""
        self._entries = []
        self.snapshot = None

    def replay_ops(self) -> Iterator[tuple[str, object]]:
        """The journal as worker ops: consecutive observes batched.

        Yields ``("observe", [event, ...])`` and ``("advance", boundary)``
        items whose in-order execution on a monitor restored from
        :attr:`snapshot` reproduces the stream's state exactly.
        """
        batch: list = []
        for kind, payload in self._entries:
            if kind == "observe":
                batch.append(payload)
                continue
            if batch:
                yield ("observe", batch)
                batch = []
            yield ("advance", payload)
        if batch:
            yield ("observe", batch)
