"""Batch aggregation shared by the service and the compat orchestrator.

:class:`BatchReport` started life in ``repro.parallel.orchestrator``; it
is re-homed here because the persistent :class:`~repro.service.MonitorService`
is now the primary producer, while ``repro.parallel`` keeps re-exporting
it for existing callers (bench wiring, tests, downstream code).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.monitor.verdicts import MonitorResult
from repro.mtl.ast import Formula
from repro.service.tasks import BatchItem


@dataclass
class BatchReport:
    """Aggregate outcome of one monitored batch.

    Per-verdict totals over the successful items, wall-clock time, and
    worker utilization (total busy seconds across items divided by
    ``workers * wall``; 1.0 means the pool never idled).
    """

    items: list[BatchItem] = field(default_factory=list)
    workers: int = 1
    wall_seconds: float = 0.0

    @property
    def ok_items(self) -> list[BatchItem]:
        return [item for item in self.items if item.ok]

    @property
    def errors(self) -> list[tuple[int, str]]:
        """Failed items (cancelled ones excluded — they were asked for)."""
        return [
            (item.index, item.error)
            for item in self.items
            if not item.ok and not item.cancelled
        ]

    @property
    def cancelled_items(self) -> list[BatchItem]:
        """Items whose futures were cancelled before they resolved."""
        return [item for item in self.items if item.cancelled]

    @property
    def results(self) -> list[MonitorResult | None]:
        """Per-item results in input order (None where the item failed)."""
        return [item.result for item in self.items]

    @property
    def verdict_totals(self) -> dict[bool, int]:
        totals: dict[bool, int] = {}
        for item in self.ok_items:
            for verdict, count in item.result.verdict_counts.items():
                totals[verdict] = totals.get(verdict, 0) + count
        return totals

    @property
    def busy_seconds(self) -> float:
        return sum(item.seconds for item in self.items)

    @property
    def utilization(self) -> float:
        if self.wall_seconds <= 0 or self.workers <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / (self.workers * self.wall_seconds))

    def merged(self, formula: Formula) -> MonitorResult:
        """All successful items folded into one result."""
        merged = MonitorResult(formula)
        for item in self.ok_items:
            merged.merge(item.result)
        return merged

    def __str__(self) -> str:
        totals = self.verdict_totals
        parts = [f"{len(self.ok_items)}/{len(self.items)} ok"]
        if self.cancelled_items:
            parts.append(f"{len(self.cancelled_items)} cancelled")
        if totals:
            parts.append(
                "verdicts " + " ".join(
                    f"{'T' if v else 'F'}×{totals[v]}" for v in sorted(totals, reverse=True)
                )
            )
        parts.append(f"wall {self.wall_seconds:.3f}s")
        parts.append(f"{self.workers} workers @ {self.utilization:.0%}")
        return "BatchReport(" + ", ".join(parts) + ")"
