"""The TCP transport backend (client side): frames over a socket.

One :class:`TcpConnection` is one worker endpoint — a socket to a
:class:`~repro.transport.agent.WorkerAgent` hosting the worker state for
this connection.  The frame format is the shared length-prefixed
encoding from :mod:`repro.transport.frames`; requests and responses are
matched by id, never by order.

**Liveness is heartbeat-based**, replacing the local backend's
``Process.is_alive`` reaping (the client cannot poll a remote process):

* a heartbeat thread sends a ``ping`` frame with the reserved
  :data:`~repro.transport.frames.HEARTBEAT_ID` every
  ``heartbeat_interval`` seconds;
* the agent's *reader* thread answers immediately — even while its
  executor is busy with a long monitor task — so a healthy peer keeps
  the receive clock fresh no matter the workload;
* ``alive()`` turns false when nothing (pong or response) has arrived
  for ``liveness_timeout`` seconds, at which point the socket is torn
  down and ``on_disconnect`` fires, exactly like an EOF.

A SIGKILLed agent closes its sockets, so outright death is detected by
EOF within milliseconds; the heartbeat catches the quieter failures
(network partition, frozen peer) that EOF never reports.
"""

from __future__ import annotations

import socket
import threading
import time

from repro.errors import ServiceError
from repro.transport.auth import client_handshake, resolve_token
from repro.transport.base import Connection, OnDisconnect, OnResponse, Transport
from repro.transport.frames import (
    DEFAULT_CODEC,
    HEARTBEAT_ID,
    Codec,
    Request,
    Response,
    read_frame,
    write_frame,
)

#: Default cadence of client heartbeats (seconds).
HEARTBEAT_INTERVAL = 1.0

#: Default silence (no pong, no response) before the peer is declared dead.
LIVENESS_TIMEOUT = 5.0


def parse_address(spec: str) -> tuple[str, int]:
    """``host:port`` or ``tcp://host:port`` → ``(host, port)``."""
    text = spec[len("tcp://"):] if spec.startswith("tcp://") else spec
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ServiceError(f"bad TCP endpoint {spec!r}: expected host:port")
    try:
        return host, int(port)
    except ValueError:
        raise ServiceError(f"bad TCP endpoint {spec!r}: port must be an integer") from None


class TcpTransport(Transport):
    """Connects to one worker agent at ``host:port``.

    ``token`` authenticates the connection against the agent's shared
    token (HMAC challenge/response at open — see
    :mod:`repro.transport.auth`); ``None`` resolves from
    ``REPRO_AGENT_TOKEN``, the empty string disables auth explicitly.
    """

    def __init__(
        self,
        host: str,
        port: int,
        codec: Codec = DEFAULT_CODEC,
        heartbeat_interval: float = HEARTBEAT_INTERVAL,
        liveness_timeout: float = LIVENESS_TIMEOUT,
        connect_timeout: float = 5.0,
        token: str | None = None,
    ) -> None:
        self._host = host
        self._port = port
        self._codec = codec
        self._heartbeat_interval = heartbeat_interval
        self._liveness_timeout = liveness_timeout
        self._connect_timeout = connect_timeout
        self._token = resolve_token(token)

    def describe(self) -> str:
        return f"tcp://{self._host}:{self._port}"

    def open(self, on_response: OnResponse, on_disconnect: OnDisconnect) -> "TcpConnection":
        try:
            sock = socket.create_connection(
                (self._host, self._port), timeout=self._connect_timeout
            )
        except OSError as exc:
            raise ServiceError(
                f"could not connect to worker agent at {self.describe()}: {exc}"
            ) from exc
        sock.settimeout(None)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        # Authenticate before the connection machinery exists: the
        # handshake owns the socket alone, so challenge/ack frames can
        # never interleave with the reader or heartbeat threads.
        try:
            client_handshake(sock, self._codec, self._token, self.describe())
        except BaseException:
            try:
                sock.close()
            except OSError:
                pass
            raise
        return TcpConnection(
            self.describe(),
            sock,
            self._codec,
            on_response,
            on_disconnect,
            self._heartbeat_interval,
            self._liveness_timeout,
        )


class TcpConnection(Connection):
    """Client half of one agent socket: reader + heartbeat threads."""

    def __init__(
        self,
        endpoint: str,
        sock: socket.socket,
        codec: Codec,
        on_response: OnResponse,
        on_disconnect: OnDisconnect,
        heartbeat_interval: float,
        liveness_timeout: float,
    ) -> None:
        self._endpoint = endpoint
        self._sock = sock
        self._codec = codec
        self._on_response = on_response
        self._on_disconnect = on_disconnect
        self._heartbeat_interval = heartbeat_interval
        self._liveness_timeout = liveness_timeout
        self._write_lock = threading.Lock()
        self._closed = False
        self._disconnected = False
        self._disconnect_fired = False
        self._disconnect_lock = threading.Lock()
        self._torn_down = False
        self._teardown_lock = threading.Lock()
        self._last_rx = time.monotonic()
        self._outstanding = 0
        self._drained = threading.Condition()
        self._stop = threading.Event()
        self._reader = threading.Thread(
            target=self._read_loop, name=f"{endpoint}-reader", daemon=True
        )
        self._heartbeat = threading.Thread(
            target=self._heartbeat_loop, name=f"{endpoint}-heartbeat", daemon=True
        )
        self._reader.start()
        self._heartbeat.start()

    @property
    def endpoint(self) -> str:
        return self._endpoint

    def send(self, request: Request) -> None:
        if self._closed:
            raise ServiceError(f"connection to {self._endpoint} is closed")
        if self._disconnected:
            raise ServiceError(f"worker agent at {self._endpoint} is unreachable")
        tracked = request.request_id >= 0
        if tracked:
            # Count *before* the write: once the frame is on the wire the
            # reader may decrement for it at any moment, and close()'s
            # drain loop must never observe a dip to zero while an
            # earlier request is still in flight.
            with self._drained:
                self._outstanding += 1
        try:
            with self._write_lock:
                write_frame(self._sock, request, self._codec)
        except BaseException as exc:
            if tracked:
                with self._drained:
                    self._outstanding -= 1
                    self._drained.notify_all()
            if isinstance(exc, OSError):
                # Includes the race where the reader/heartbeat lost the
                # peer (and closed the socket) between this call's
                # liveness check and the write: either way the peer is
                # gone, so report it like any other peer loss.
                self._lose_peer()
                raise ServiceError(
                    f"worker agent at {self._endpoint} is unreachable "
                    f"(send failed: {exc})"
                ) from exc
            raise

    def alive(self) -> bool:
        if self._closed or self._disconnected:
            return False
        return time.monotonic() - self._last_rx < self._liveness_timeout

    def close(self, timeout: float = 5.0) -> None:
        if self._closed:
            return
        self._closed = True
        deadline = time.monotonic() + max(0.0, timeout)
        with self._drained:  # let the peer answer what was already sent
            while self._outstanding > 0 and not self._disconnected:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._drained.wait(remaining)
        self._stop.set()
        self._teardown_socket()
        # Join both background threads: a closed connection must leave
        # nothing running (and nothing holding the socket alive — the
        # leak check is ``-W error::ResourceWarning`` in the test lane).
        self._reader.join(1.0)
        self._heartbeat.join(self._heartbeat_interval + 1.0)

    def _teardown_socket(self) -> None:
        """Shut down and close the socket exactly once.

        Reachable from ``close()``, the reader (EOF), and the heartbeat
        (silence) — the flag keeps the close single whichever combination
        races.
        """
        with self._teardown_lock:
            if self._torn_down:
                return
            self._torn_down = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def _lose_peer(self) -> None:
        """Declare the peer dead exactly once; wake every waiter."""
        self._disconnected = True
        self._stop.set()
        self._teardown_socket()
        with self._drained:
            self._drained.notify_all()
        with self._disconnect_lock:
            if self._disconnect_fired or self._closed:
                return
            self._disconnect_fired = True
        self._on_disconnect()

    def _read_loop(self) -> None:
        while not self._stop.is_set():
            try:
                frame = read_frame(self._sock, self._codec)
            except Exception:  # noqa: BLE001 — broken stream or undecodable frame
                # Includes codec failures (a cross-revision peer whose
                # payload will not unpickle here): the channel is
                # unusable, so lose the peer instead of hanging futures.
                frame = None
            if frame is None:  # EOF or broken stream
                break
            self._last_rx = time.monotonic()
            if not isinstance(frame, Response):
                continue  # protocol noise from a confused peer: ignore
            if frame.request_id == HEARTBEAT_ID:
                continue  # pong: the rx clock update above is its whole job
            with self._drained:
                self._outstanding -= 1
                self._drained.notify_all()
            self._on_response(frame)
        if not self._closed:
            self._lose_peer()

    def _heartbeat_loop(self) -> None:
        ping = Request(HEARTBEAT_ID, "ping", None)
        while not self._stop.wait(self._heartbeat_interval):
            if self._closed or self._disconnected:
                return
            if time.monotonic() - self._last_rx >= self._liveness_timeout:
                self._lose_peer()
                return
            try:
                with self._write_lock:
                    write_frame(self._sock, ping, self._codec)
            except OSError:
                self._lose_peer()
                return
