"""The in-process transport backend: one ``multiprocessing`` child per
endpoint.

This is the original service pool scheme — a private FIFO inbox queue
per worker plus a private response pipe — refactored to implement the
:class:`~repro.transport.base.Transport` interface, so the service no
longer knows it exists.  The invariants that made the original design
robust survive the refactor:

* **Single writer per pipe** — the child is the only writer of its
  response pipe, so no lock is shared between workers and a worker dying
  mid-write cannot wedge the others.

* **EOF is the death signal** — the parent closes its copy of the write
  end after the fork, so the pipe hits EOF exactly when the child exits
  (cleanly or killed).  The reader thread drains every buffered response
  first, then fires ``on_disconnect`` — queued work that finished before
  a shutdown still resolves.

* **Process liveness backs up EOF** — :meth:`LocalConnection.alive`
  answers from ``Process.is_alive()``, the local analogue of the TCP
  backend's heartbeat recency.
"""

from __future__ import annotations

import itertools
import multiprocessing
import threading
from typing import Callable

from repro.errors import ServiceError
from repro.transport.base import Connection, OnDisconnect, OnResponse, Transport
from repro.transport.frames import (
    DEFAULT_CODEC,
    Codec,
    Request,
    decode_frame,
    encode_frame,
)

_spawn_counter = itertools.count()


def _default_target() -> Callable:
    # Imported lazily: the transport layer stays importable without the
    # service package (and the service worker imports transport frames).
    from repro.service.worker import service_worker_loop

    return service_worker_loop


class LocalTransport(Transport):
    """Spawns one worker process per :meth:`open`.

    ``target(inbox, response_writer, codec)`` is the child body; it
    defaults to the monitor service's worker loop but is injectable so
    the transport itself stays generic (and testable).
    """

    def __init__(self, target: Callable | None = None, codec: Codec = DEFAULT_CODEC):
        self._target = target
        self._codec = codec

    def describe(self) -> str:
        return "local"

    def open(self, on_response: OnResponse, on_disconnect: OnDisconnect) -> "LocalConnection":
        index = next(_spawn_counter)
        target = self._target if self._target is not None else _default_target()
        ctx = multiprocessing.get_context()
        inbox = ctx.Queue()
        reader, writer = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=target,
            args=(inbox, writer, self._codec),
            daemon=True,
            name=f"monitor-worker-{index}",
        )
        try:
            process.start()
        except Exception as exc:  # noqa: BLE001 — spawn failure is a transport error
            raise ServiceError(f"could not spawn local worker: {exc}") from exc
        writer.close()  # child keeps its copy; EOF then tracks its life
        return LocalConnection(
            index, process, inbox, reader, self._codec, on_response, on_disconnect
        )


class LocalConnection(Connection):
    """Client half of one spawned worker: inbox queue + response pipe."""

    def __init__(
        self, index, process, inbox, reader, codec, on_response, on_disconnect
    ) -> None:
        self._endpoint = f"local[{index}]"
        self._process = process
        self._inbox = inbox
        self._pipe = reader
        self._codec = codec
        self._on_response = on_response
        self._on_disconnect = on_disconnect
        self._closed = False
        self._disconnected = False
        self._reader = threading.Thread(
            target=self._read_loop, name=f"{self._endpoint}-reader", daemon=True
        )
        self._reader.start()

    @property
    def endpoint(self) -> str:
        return self._endpoint

    @property
    def process(self):
        """The backing worker process (test/ops hook)."""
        return self._process

    def send(self, request: Request) -> None:
        if self._closed:
            raise ServiceError(f"connection to {self._endpoint} is closed")
        if self._disconnected:
            raise ServiceError(f"worker at {self._endpoint} has died")
        self._inbox.put(encode_frame(request, self._codec))

    def alive(self) -> bool:
        return (
            not self._closed
            and not self._disconnected
            and self._process.is_alive()
        )

    def close(self, timeout: float = 5.0) -> None:
        if self._closed:
            return
        self._closed = True
        if self._process.is_alive():
            try:
                self._inbox.put(None)  # FIFO: backlog drains before the sentinel
            except Exception:  # noqa: BLE001 — queue already broken
                pass
        self._process.join(max(0.0, timeout))
        if self._process.is_alive():
            self._process.terminate()
            self._process.join(1.0)
        # The pipe hits EOF once the child is gone; the reader thread
        # drains buffered responses first, so wait for it before the
        # caller fails leftover futures.
        self._reader.join(max(1.0, timeout))
        self._inbox.close()

    def kill(self) -> None:
        """SIGKILL the worker (death surfaces via EOF → ``on_disconnect``)."""
        if self._process.is_alive():
            self._process.kill()

    def _read_loop(self) -> None:
        while True:
            try:
                frame = self._pipe.recv_bytes()
            except (EOFError, OSError):
                break
            try:
                response = decode_frame(frame, self._codec)
            except Exception:  # noqa: BLE001 — a frame this side cannot decode
                # (corrupt pipe, or a cross-revision payload the codec
                # chokes on) means the channel is unusable: losing the
                # peer beats hanging its futures forever.
                break
            self._on_response(response)
        self._disconnected = True
        try:
            self._pipe.close()
        except OSError:
            pass
        if not self._closed:
            self._on_disconnect()
