"""Transport abstractions: how a service client reaches a worker.

The :class:`~repro.service.MonitorService` speaks *only* these
interfaces; everything ``multiprocessing``- or socket-specific lives in
the backends (:mod:`repro.transport.local`, :mod:`repro.transport.tcp`).

* :class:`Transport` — a factory for connections to one worker endpoint.
  ``open(on_response, on_disconnect)`` establishes a live
  :class:`Connection`; a service pool is just a list of transports, and
  the list may mix backends (local processes next to TCP agents).

* :class:`Connection` — one bidirectional request/response channel.
  ``send`` is non-blocking; responses arrive on a backend-owned reader
  thread via the ``on_response`` callback; ``on_disconnect`` fires
  exactly once when the peer is lost (EOF, heartbeat timeout, kill) —
  *not* on a locally initiated :meth:`Connection.close`.

* :class:`Listener` — the server half for networked backends: accepts
  peer connections and hosts worker state for each (see
  :class:`~repro.transport.agent.WorkerAgent`).

Liveness is the connection's problem, not the service's: ``alive()``
must answer from the backend's own signal (process liveness for local
workers, heartbeat recency for sockets), so the service can reap dead
endpoints without knowing what an endpoint is.
"""

from __future__ import annotations

import abc
from typing import Callable

from repro.transport.frames import Request, Response

#: Response callback: invoked from the connection's reader thread.
OnResponse = Callable[[Response], None]

#: Disconnect callback: invoked at most once, from a backend thread.
OnDisconnect = Callable[[], None]


class Connection(abc.ABC):
    """One live request/response channel to a worker endpoint."""

    @property
    @abc.abstractmethod
    def endpoint(self) -> str:
        """Human-readable endpoint description (``local[3]``, ``tcp://...``)."""

    @abc.abstractmethod
    def send(self, request: Request) -> None:
        """Ship one frame (non-blocking); :class:`~repro.errors.ServiceError`
        if the connection is closed or the peer is known dead."""

    @abc.abstractmethod
    def alive(self) -> bool:
        """Backend's own liveness verdict (process alive / heartbeat fresh)."""

    @abc.abstractmethod
    def close(self, timeout: float = 5.0) -> None:
        """Graceful teardown: give the peer up to ``timeout`` seconds to
        answer everything already sent, then release the channel.  Does
        not fire ``on_disconnect``.  Idempotent."""

    def kill(self) -> None:
        """Hard teardown (test/ops hook): drop the channel immediately,
        killing the peer where the backend owns it.  The loss surfaces
        through ``on_disconnect``/``alive()`` like any peer death."""
        self.close(timeout=0.0)


class Transport(abc.ABC):
    """Factory for connections to one worker endpoint."""

    @abc.abstractmethod
    def open(self, on_response: OnResponse, on_disconnect: OnDisconnect) -> Connection:
        """Establish a live connection; raises
        :class:`~repro.errors.ServiceError` when the endpoint is
        unreachable (connection refused, spawn failure)."""

    @abc.abstractmethod
    def describe(self) -> str:
        """Endpoint description for placement/debug output."""


class Listener(abc.ABC):
    """Server half of a networked transport: accepts peer connections."""

    @property
    @abc.abstractmethod
    def address(self) -> str:
        """The bound address (``host:port`` once listening)."""

    @abc.abstractmethod
    def start(self) -> None:
        """Bind and begin accepting peers."""

    @abc.abstractmethod
    def close(self) -> None:
        """Stop accepting, drop live peers, release the socket."""
