"""Deterministic, seed-driven fault injection for transports.

Every distributed-failure test in this repo used to rely on the
cleanest failure there is: SIGKILL, which turns into an instant EOF.
Real networks misbehave far more creatively — they deliver frames late,
twice, out of order, partially, or not at all, while both endpoints
stay perfectly alive.  This module makes those *gray* failures
reproducible:

* :class:`FaultSchedule` — a pure, seed-driven decision source.  For a
  given ``(seed, lane, frame index)`` it always produces the same
  :class:`FaultDecision`, independent of thread scheduling, platform,
  or wall-clock time (string seeding of :class:`random.Random` is
  stable SHA-512-based initialisation).  A failing chaos run therefore
  reproduces from nothing but its printed seed.

* :class:`FaultyTransport` / :class:`FaultyConnection` — wrap any
  :class:`~repro.transport.base.Transport` (local or TCP) and apply
  **drop / delay / duplicate / reorder / corrupt / one-way-partition /
  slow-link** faults at message granularity, per direction (``c2s`` =
  client→server requests, ``s2c`` = server→client responses).  Each
  direction is pumped by one FIFO thread, so a *delay* stalls the whole
  lane (like a congested link) rather than silently reordering.
  *Corrupt* is modeled as what a corrupt frame does to a real framed
  stream: the receiver cannot decode it and tears the connection down —
  the wrapper drops the frame, closes the inner channel, and fires
  ``on_disconnect``.  Because the wrapper sits *above* the TCP
  heartbeat loop, a slow wrapper lane is exactly the dangerous case:
  a connection that stays heartbeat-alive while traffic crawls.

* :class:`ChaosProxy` — a TCP relay for out-of-process agents.  It
  parses the length-prefixed framing so faults stay frame-granular,
  and *corrupt* here is a real bit flip in the payload bytes crossing
  the wire.  Because it sits *below* the heartbeat loop, proxy faults
  can starve liveness pings and trip the detector — the complement of
  the wrapper's alive-but-slow lane.

Nothing here changes delivery *content*: apart from ``corrupt``, every
frame that is delivered is delivered verbatim, so correctness claims
("bit-identical verdict multisets under faults") test the protocol, not
the injector.
"""

from __future__ import annotations

import random
import socket
import struct
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ServiceError
from repro.transport.base import Connection, OnDisconnect, OnResponse, Transport
from repro.transport.frames import (
    FRAME_MAGIC,
    HEADER_SIZE,
    MAX_FRAME_BYTES,
    Request,
    Response,
)

#: Direction labels: client→server requests / server→client responses.
C2S = "c2s"
S2C = "s2c"
DIRECTIONS = (C2S, S2C)


@dataclass(frozen=True)
class FaultDecision:
    """What happens to one frame.  Pure data, fully printable."""

    drop: bool = False
    duplicate: bool = False
    reorder: bool = False
    corrupt: bool = False
    #: Seconds the lane stalls before delivering this frame (slow link
    #: latency + jitter + any injected delay, folded into one number).
    stall: float = 0.0

    @property
    def clean(self) -> bool:
        return not (self.drop or self.duplicate or self.reorder or self.corrupt or self.stall)


@dataclass(frozen=True)
class FaultSchedule:
    """Seed-driven fault decisions, deterministic per ``(lane, index)``.

    Probabilities are independent per fault class; the per-frame RNG is
    ``random.Random(f"{seed}:{lane}:{index}")``, so decisions do not
    depend on how many frames other lanes carried or on thread timing.

    ``partition`` models a one-way (or symmetric) partition as a frame
    *index window*: frames ``partition_start <= i < partition_start +
    partition_span`` in the partitioned direction are dropped; a
    ``partition_span`` of ``None`` never heals.
    """

    seed: int | str = 0
    drop: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    corrupt: float = 0.0
    #: Probability of an extra stall of ``delay_seconds`` on a frame.
    delay: float = 0.0
    delay_seconds: float = 0.05
    #: Fixed per-frame latency (slow link) plus uniform jitter on top.
    latency: float = 0.0
    jitter: float = 0.0
    #: One-way partition: "c2s", "s2c", or "both"; None disables.
    partition: str | None = None
    partition_start: int = 0
    partition_span: int | None = None
    #: How long a reordered frame is held waiting for a successor
    #: before being flushed in order anyway.
    reorder_window: float = 0.05
    #: Initial frames per lane delivered untouched (setup traffic such
    #: as ``session_open`` round-trips passes clean before chaos begins
    #: — the wrapper-level analogue of :class:`ChaosProxy`'s
    #: ``handshake_grace``).
    grace: int = 0

    def __post_init__(self) -> None:
        if self.grace < 0:
            raise ValueError(f"grace must be >= 0, got {self.grace!r}")
        for name in ("drop", "duplicate", "reorder", "corrupt", "delay"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} probability must be in [0, 1], got {p!r}")
        if self.partition not in (None, C2S, S2C, "both"):
            raise ValueError(f"partition must be one of {C2S!r}, {S2C!r}, 'both', None")

    def rng(self, lane: str, index: int) -> random.Random:
        """The per-frame RNG; exposed so :class:`ChaosProxy` can draw
        corruption offsets from the same deterministic stream."""
        return random.Random(f"{self.seed}:{lane}:{index}")

    def partitioned(self, direction: str, index: int) -> bool:
        if self.partition is None or self.partition not in (direction, "both"):
            return False
        if index < self.partition_start:
            return False
        span = self.partition_span
        return span is None or index < self.partition_start + span

    def decision(self, lane: str, index: int) -> FaultDecision:
        rng = self.rng(lane, index)
        # Fixed draw order: each class consumes exactly one uniform so
        # adding a probability never shifts another class's stream.
        u_drop = rng.random()
        u_dup = rng.random()
        u_reorder = rng.random()
        u_corrupt = rng.random()
        u_delay = rng.random()
        u_jitter = rng.random()
        stall = self.latency + self.jitter * u_jitter
        if self.delay and u_delay < self.delay:
            stall += self.delay_seconds
        return FaultDecision(
            drop=bool(self.drop and u_drop < self.drop),
            duplicate=bool(self.duplicate and u_dup < self.duplicate),
            reorder=bool(self.reorder and u_reorder < self.reorder),
            corrupt=bool(self.corrupt and u_corrupt < self.corrupt),
            stall=stall,
        )

    def describe(self) -> str:
        knobs = []
        for name in ("drop", "duplicate", "reorder", "corrupt", "delay", "latency"):
            value = getattr(self, name)
            if value:
                knobs.append(f"{name}={value}")
        if self.partition:
            span = "∞" if self.partition_span is None else str(self.partition_span)
            knobs.append(f"partition={self.partition}[{self.partition_start}+{span}]")
        return f"FaultSchedule(seed={self.seed!r}, {', '.join(knobs) or 'clean'})"


class _ClosePump:
    """Sentinel asking a lane pump to drain and exit."""


_CLOSE = _ClosePump()


class _Lane:
    """One direction's FIFO fault pump.

    Frames enter via :meth:`push` in send order and leave via
    ``deliver`` on the pump thread, after the schedule's decision for
    their arrival index has been applied.  FIFO is preserved except for
    explicit ``reorder`` swaps.
    """

    def __init__(
        self,
        schedule: FaultSchedule,
        direction: str,
        lane_key: str,
        deliver: Callable[[object], None],
        on_link_loss: Callable[[str], None],
        stats: dict[str, int],
    ) -> None:
        self._schedule = schedule
        self._direction = direction
        self._lane_key = lane_key
        self._deliver = deliver
        self._on_link_loss = on_link_loss
        self._stats = stats
        self._queue: deque[object] = deque()
        self._cond = threading.Condition()
        self._stopped = False
        self._index = 0
        self._thread = threading.Thread(
            target=self._pump, name=f"fault-lane-{lane_key}", daemon=True
        )
        self._thread.start()

    def push(self, frame: object) -> None:
        with self._cond:
            if self._stopped:
                return
            self._queue.append(frame)
            self._cond.notify()

    def close(self, timeout: float = 5.0) -> None:
        """Ask the pump to drain what is queued, then exit."""
        with self._cond:
            if self._stopped:
                return
            self._queue.append(_CLOSE)
            self._cond.notify()
        self._thread.join(timeout)
        with self._cond:
            self._stopped = True

    def kill(self) -> None:
        with self._cond:
            self._stopped = True
            self._queue.clear()
            self._cond.notify()

    def _pop(self, timeout: float | None) -> object | None:
        """Next queued frame, ``None`` on timeout or kill."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while not self._queue and not self._stopped:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return None
                self._cond.wait(remaining)
            if self._stopped or not self._queue:
                return None
            return self._queue.popleft()

    def _send(self, frame: object) -> bool:
        try:
            self._deliver(frame)
        except Exception:
            self._on_link_loss(f"{self._direction} delivery failed")
            return False
        self._stats["delivered"] += 1
        return True

    def _pump(self) -> None:
        held: object | None = None
        held_deadline = 0.0
        while True:
            timeout = None
            if held is not None:
                timeout = max(0.0, held_deadline - time.monotonic())
            frame = self._pop(timeout)
            if frame is None:
                if self._stopped:
                    return
                # Reorder window expired with no successor: flush in order.
                if held is not None:
                    flushed, held = held, None
                    if not self._send(flushed):
                        return
                continue
            if frame is _CLOSE:
                if held is not None and not self._send(held):
                    return
                with self._cond:
                    self._stopped = True
                return
            index = self._index
            self._index += 1
            if index < self._schedule.grace:
                if not self._send(frame):
                    return
                continue
            decision = self._schedule.decision(self._lane_key, index)
            if self._schedule.partitioned(self._direction, index):
                self._stats["partitioned"] += 1
                continue
            if decision.drop:
                self._stats["dropped"] += 1
                continue
            if decision.corrupt:
                # A corrupt frame is undecodable at the receiver, which
                # tears the framed stream down; model exactly that.
                self._stats["corrupted"] += 1
                self._on_link_loss("corrupt frame")
                return
            if decision.stall:
                time.sleep(decision.stall)
            if held is not None:
                # Successor arrived inside the window: swap delivery order.
                self._stats["reordered"] += 1
                if not self._send(frame):
                    return
                flushed, held = held, None
                if not self._send(flushed):
                    return
                continue
            if decision.reorder:
                held = frame
                held_deadline = time.monotonic() + self._schedule.reorder_window
                continue
            if not self._send(frame):
                return
            if decision.duplicate:
                self._stats["duplicated"] += 1
                if not self._send(frame):
                    return


def _fresh_stats() -> dict[str, int]:
    return {
        "sent": 0,
        "received": 0,
        "delivered": 0,
        "dropped": 0,
        "duplicated": 0,
        "reordered": 0,
        "corrupted": 0,
        "partitioned": 0,
    }


class FaultyConnection(Connection):
    """A :class:`Connection` whose frames pass through a fault schedule.

    Requests queue into the ``c2s`` lane before reaching the inner
    connection; responses from the inner connection queue into the
    ``s2c`` lane before reaching the caller's ``on_response``.  Link
    loss injected by the schedule (``corrupt``) surfaces exactly like a
    real peer death: ``alive()`` goes false, ``on_disconnect`` fires
    once, and further :meth:`send` calls raise
    :class:`~repro.errors.ServiceError`.
    """

    def __init__(
        self,
        inner: Connection,
        schedule: FaultSchedule,
        on_response: OnResponse,
        on_disconnect: OnDisconnect,
        conn_index: int = 0,
    ) -> None:
        self._inner = inner
        self._schedule = schedule
        self._on_response = on_response
        self._on_disconnect = on_disconnect
        self._lost = False
        self._closed = False
        self._lost_lock = threading.Lock()
        self.stats = _fresh_stats()
        self._c2s = _Lane(
            schedule, C2S, f"{conn_index}:{C2S}", inner.send, self._lose, self.stats
        )
        self._s2c = _Lane(
            schedule, S2C, f"{conn_index}:{S2C}", on_response, self._lose, self.stats
        )

    # -- callbacks handed to the inner connection ---------------------

    def _inner_response(self, response: Response) -> None:
        self.stats["received"] += 1
        self._s2c.push(response)

    def _inner_disconnect(self) -> None:
        self._lose("inner connection lost", close_inner=False)

    # -- fault plumbing ------------------------------------------------

    def _lose(self, reason: str, close_inner: bool = True) -> None:
        with self._lost_lock:
            if self._lost:
                return
            self._lost = True
            fire = not self._closed
        if close_inner:
            try:
                self._inner.close(timeout=0.0)
            except Exception:
                pass
        if fire:
            try:
                self._on_disconnect()
            except Exception:
                pass

    # -- Connection interface -----------------------------------------

    @property
    def endpoint(self) -> str:
        return f"faulty({self._inner.endpoint})"

    def send(self, request: Request) -> None:
        if self._closed or self._lost:
            raise ServiceError(f"connection to {self.endpoint} is closed")
        self.stats["sent"] += 1
        self._c2s.push(request)

    def alive(self) -> bool:
        return not self._lost and not self._closed and self._inner.alive()

    def close(self, timeout: float = 5.0) -> None:
        if self._closed:
            return
        self._closed = True
        # Drain queued requests first so a graceful close still delivers
        # everything already accepted by send().
        self._c2s.close(timeout)
        self._inner.close(timeout)
        self._s2c.close(timeout=1.0)

    def kill(self) -> None:
        self._closed = True
        self._c2s.kill()
        self._s2c.kill()
        try:
            self._inner.kill()
        except Exception:
            pass


class FaultyTransport(Transport):
    """Wrap any transport so its connections inject scheduled faults.

    Connections opened through one ``FaultyTransport`` get consecutive
    lane keys (``0:c2s``, ``1:c2s``, ...), so multi-endpoint runs stay
    deterministic as long as endpoints are opened in a fixed order —
    which :class:`~repro.service.MonitorService` does.
    """

    def __init__(self, inner: Transport, schedule: FaultSchedule) -> None:
        self._inner = inner
        self._schedule = schedule
        self._conn_count = 0
        self._lock = threading.Lock()
        self.connections: list[FaultyConnection] = []

    def open(self, on_response: OnResponse, on_disconnect: OnDisconnect) -> Connection:
        with self._lock:
            conn_index = self._conn_count
            self._conn_count += 1
        holder: list[FaultyConnection] = []

        def inner_response(response: Response) -> None:
            holder[0]._inner_response(response)

        def inner_disconnect() -> None:
            holder[0]._inner_disconnect()

        inner = self._inner.open(inner_response, inner_disconnect)
        connection = FaultyConnection(
            inner, self._schedule, on_response, on_disconnect, conn_index
        )
        holder.append(connection)
        with self._lock:
            self.connections.append(connection)
        return connection

    def describe(self) -> str:
        return f"faulty({self._inner.describe()})"

    def stats(self) -> dict[str, int]:
        """Aggregate fault counters across every opened connection."""
        total = _fresh_stats()
        with self._lock:
            connections = list(self.connections)
        for connection in connections:
            for key, value in connection.stats.items():
                total[key] += value
        return total


_LENGTH = struct.Struct(">I")


class ChaosProxy:
    """A frame-granular TCP relay that injects scheduled faults.

    Sits between a :class:`~repro.transport.tcp.TcpTransport` client and
    a real agent/registry socket.  Both directions are parsed into
    length-prefixed frames (``magic | version | length | payload``) so
    faults never split a frame in half — except ``corrupt``, which flips
    one payload bit and delivers the damage, exercising the receiver's
    decoder hardening for real.

    ``handshake_grace`` initial frames per direction pass through
    untouched so the token-auth handshake (which legitimately aborts the
    connection on any tampering) completes before chaos begins.
    """

    def __init__(
        self,
        target_host: str,
        target_port: int,
        schedule: FaultSchedule,
        host: str = "127.0.0.1",
        port: int = 0,
        handshake_grace: int = 4,
    ) -> None:
        self._target = (target_host, target_port)
        self._schedule = schedule
        self._host = host
        self._port = port
        self._grace = handshake_grace
        self._server: socket.socket | None = None
        self._closed = False
        self._conn_count = 0
        self._lock = threading.Lock()
        self._threads: list[threading.Thread] = []
        self._peers: list[socket.socket] = []
        self.stats = _fresh_stats()

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "ChaosProxy":
        server = socket.create_server((self._host, self._port))
        server.settimeout(0.2)
        self._server = server
        self._port = server.getsockname()[1]
        accept = threading.Thread(target=self._accept_loop, name="chaos-proxy", daemon=True)
        accept.start()
        self._threads.append(accept)
        return self

    @property
    def address(self) -> str:
        return f"{self._host}:{self._port}"

    @property
    def port(self) -> int:
        return self._port

    def close(self) -> None:
        self._closed = True
        if self._server is not None:
            try:
                self._server.close()
            except OSError:
                pass
        with self._lock:
            peers = list(self._peers)
        for sock in peers:
            try:
                sock.close()
            except OSError:
                pass
        for thread in self._threads:
            thread.join(timeout=2.0)

    def __enter__(self) -> "ChaosProxy":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- relay ---------------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._server is not None
        while not self._closed:
            try:
                client, _ = self._server.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            try:
                upstream = socket.create_connection(self._target, timeout=5.0)
            except OSError:
                client.close()
                continue
            with self._lock:
                conn_index = self._conn_count
                self._conn_count += 1
                self._peers.extend((client, upstream))
            for direction, src, dst in ((C2S, client, upstream), (S2C, upstream, client)):
                thread = threading.Thread(
                    target=self._relay,
                    args=(direction, f"{conn_index}:{direction}", src, dst),
                    name=f"chaos-relay-{conn_index}-{direction}",
                    daemon=True,
                )
                thread.start()
                self._threads.append(thread)

    @staticmethod
    def _read_exact(sock: socket.socket, count: int) -> bytes | None:
        chunks = b""
        while len(chunks) < count:
            try:
                chunk = sock.recv(count - len(chunks))
            except OSError:
                return None
            if not chunk:
                return None
            chunks += chunk
        return chunks

    def _read_frame(self, sock: socket.socket) -> bytes | None:
        header = self._read_exact(sock, HEADER_SIZE)
        if header is None:
            return None
        if header[:2] != FRAME_MAGIC:
            # Unparseable stream: give up on frame granularity and drop
            # the link (a real middlebox would do no better).
            return None
        (length,) = _LENGTH.unpack(header[3:7])
        if length > MAX_FRAME_BYTES:
            return None
        payload = self._read_exact(sock, length)
        if payload is None:
            return None
        return header + payload

    def _relay(self, direction: str, lane_key: str, src: socket.socket, dst: socket.socket) -> None:
        index = 0
        held: bytes | None = None

        def ship(frame: bytes) -> bool:
            try:
                dst.sendall(frame)
            except OSError:
                return False
            self.stats["delivered"] += 1
            return True

        try:
            while not self._closed:
                frame = self._read_frame(src)
                if frame is None:
                    break
                if index < self._grace:
                    index += 1
                    if not ship(frame):
                        break
                    continue
                decision = self._schedule.decision(lane_key, index)
                partitioned = self._schedule.partitioned(direction, index)
                index += 1
                if partitioned:
                    self.stats["partitioned"] += 1
                    continue
                if decision.drop:
                    self.stats["dropped"] += 1
                    continue
                if decision.stall:
                    time.sleep(decision.stall)
                if decision.corrupt:
                    frame = self._flip_bit(frame, lane_key, index - 1)
                    self.stats["corrupted"] += 1
                if held is not None:
                    self.stats["reordered"] += 1
                    if not ship(frame):
                        break
                    flushed, held = held, None
                    if not ship(flushed):
                        break
                    continue
                if decision.reorder and not decision.corrupt:
                    held = frame
                    continue
                if not ship(frame):
                    break
                if decision.duplicate:
                    self.stats["duplicated"] += 1
                    if not ship(frame):
                        break
        finally:
            if held is not None:
                ship(held)
            for sock in (src, dst):
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    sock.close()
                except OSError:
                    pass

    def _flip_bit(self, frame: bytes, lane_key: str, index: int) -> bytes:
        rng = self._schedule.rng(f"{lane_key}:flip", index)
        payload_len = len(frame) - HEADER_SIZE
        if payload_len <= 0:
            # Header-only frame: damage the version byte instead.
            damaged = bytearray(frame)
            damaged[2] ^= 0xFF
            return bytes(damaged)
        offset = HEADER_SIZE + rng.randrange(payload_len)
        bit = 1 << rng.randrange(8)
        damaged = bytearray(frame)
        damaged[offset] ^= bit
        return bytes(damaged)
