"""Typed Request/Response frames and their wire encoding.

The service's wire protocol used to be implicit: plain dataclasses
pickled through ``multiprocessing`` queues and pipes.  This module makes
it explicit so the same frames can cross process boundaries *and*
sockets:

* :class:`Request` / :class:`Response` — the only two frame types.  One
  request produces exactly one response, matched by ``request_id``;
  responses may interleave arbitrarily across requests, so clients must
  resolve by id, never by arrival order.  Two ids are reserved:
  :data:`HEARTBEAT_ID` (liveness pings, answered out-of-band and never
  surfaced to callers) and :data:`CONTROL_ID` (fire-and-forget control
  frames such as ``drop``, which get no response).

* **Versioned, length-prefixed encoding** — every frame on the wire is
  ``magic (2) | version (1) | length (4, big-endian) | payload``.  The
  length prefix makes stream transports (TCP) self-delimiting; the magic
  and version bytes reject cross-version peers with a clear
  :class:`~repro.errors.ServiceError` instead of a pickle explosion.

* **Codec interface** — the payload bytes are produced by a
  :class:`Codec` (default :class:`PickleCodec`).  Pickle is the codec,
  not the protocol: a msgpack/json codec for cross-language workers only
  has to implement ``encode``/``decode``.

* **Packed observe-batch fast path** — ``session_observe`` requests (the
  per-event hot path of every live session) are struct-packed into a
  :data:`FRAME_VERSION_PACKED` frame instead of pickled, negotiated per
  frame through the existing version byte: a frame's version says how
  its payload was encoded, so packed frames ride beside pickled ones on
  the same connection and a peer that does not know the packed version
  rejects it with a clear error instead of misreading it.  Beyond speed,
  the packed decoder never runs pickle on the highest-volume frame type
  (``REPRO_WIRE_FASTPATH=0`` disables the packing side; decoding is
  always understood).
"""

from __future__ import annotations

import os
import pickle
import struct
from dataclasses import dataclass
from typing import Any, Protocol

from repro.errors import ServiceError

#: Reserved request id for liveness pings (answered by the peer's reader
#: thread even while its executor is busy; never resolved to a future).
HEARTBEAT_ID = -1

#: Reserved request id for fire-and-forget control frames (no response).
CONTROL_ID = -2

#: Reserved request id for the connection-open auth handshake (see
#: :mod:`repro.transport.auth`): the challenge, its answer, and the
#: server's acknowledgement (or typed ``AuthError`` rejection) all ride
#: on this id, strictly before any other frame is dispatched.
AUTH_ID = -3

#: Reserved request id for unsolicited cluster-membership events pushed
#: by the :class:`~repro.cluster.ClusterRegistry` to its subscribers.
#: Never resolved to a future — subscribers route it to their event
#: callback instead.
REGISTRY_EVENT_ID = -4

#: Session-migration ops (see the frame-op table in DESIGN.md): snapshot
#: serializes one live session's full monitor state off its worker;
#: restore rehydrates that state under the same session id on another.
#: Named here — not just in the worker's dispatch — because both sides
#: of the wire and the client-side migration logic must agree on them.
SNAPSHOT_SESSION = "session_snapshot"
RESTORE_SESSION = "session_restore"

#: Durability ops (see the "Durability" section in DESIGN.md).
#: ``session_snapshot`` doubles as the checkpoint frame — it is
#: serialize-but-keep, exactly what a periodic checkpoint needs.  The
#: standby trio manages warm replicas: ``session_standby`` stores a
#: snapshot payload tagged with its checkpoint sequence number on a peer
#: endpoint *without* rehydrating it (cheap: no monitor is built),
#: ``session_promote`` turns a stored standby into the live monitor at
#: failover (so recovery is journal-replay only, no snapshot transfer) —
#: but only when the stored sequence matches the one the promote
#: expects, so a replica that went stale behind the client's truncated
#: replay journal is rejected instead of losing history silently — and
#: ``session_standby_drop`` discards a standby that is no longer wanted
#: (session finished, replica moved or retired).
STANDBY_SESSION = "session_standby"
PROMOTE_SESSION = "session_promote"
DROP_STANDBY = "session_standby_drop"

#: The exact error string a worker answers for a request it skipped
#: because a ``drop`` control frame arrived first.  Work stealing keys on
#: it: this ack *proves* the request never started executing, so
#: resubmitting it elsewhere cannot double-execute.  Any other response
#: to a dropped request means the drop lost its race.
DROPPED_BEFORE_EXECUTION = "CancelledError: dropped before execution"

#: Error-string prefix of the executor's idempotency fence: a request
#: whose id is at or below the connection's high-water mark is a
#: duplicated or reordered frame and is *refused without executing*.
#: Request ids on one connection strictly increase (the service's
#: monotone counter + FIFO sends), so under faults this fence upgrades
#: the at-most-once guarantee from "a drop-ack proves it never started"
#: to "no frame can ever execute twice, however the network replays it".
STALE_REQUEST_PREFIX = "ServiceError: stale request id"

#: Every op the request executor understands, for conformance checks and
#: protocol docs.  ``drop`` rides on :data:`CONTROL_ID` and produces no
#: response; everything else produces exactly one.
KNOWN_OPS = (
    "monitor",
    "shard",
    "segment_part",
    "session_open",
    "session_observe",
    "session_advance",
    "session_poll",
    "session_finish",
    "session_close",
    SNAPSHOT_SESSION,
    RESTORE_SESSION,
    STANDBY_SESSION,
    PROMOTE_SESSION,
    DROP_STANDBY,
    "ping",
    "echo",
    "sleep",
    "crash",
    "drop",
)

FRAME_MAGIC = b"RV"
FRAME_VERSION = 1

#: Frame version for struct-packed ``session_observe`` requests.  The
#: version byte is per *frame*, so packed and pickled frames interleave
#: freely on one connection.
FRAME_VERSION_PACKED = 2

#: Frame version for struct-packed fixed-shape session calls
#: (``session_advance`` / ``session_poll``) — with observe these cover
#: the entire per-event hot loop of a live session, so a feeding client
#: runs pickle-free on the wire between checkpoints.
FRAME_VERSION_PACKED_CALL = 3

#: Versions this side understands on receive.
KNOWN_FRAME_VERSIONS = (FRAME_VERSION, FRAME_VERSION_PACKED, FRAME_VERSION_PACKED_CALL)

#: Sanity bound: a length prefix beyond this is treated as a corrupt or
#: hostile stream, not an allocation request.
MAX_FRAME_BYTES = 256 * 1024 * 1024

_HEADER = struct.Struct(">2sBI")
HEADER_SIZE = _HEADER.size


@dataclass
class Request:
    """One unit of work for a pool worker."""

    request_id: int
    op: str
    payload: Any


@dataclass
class Response:
    """The worker's answer to one request.

    ``op`` echoes the request's op when the executor knows it — it is
    advisory (clients match responses by ``request_id`` alone) but lets
    the encoder pick a packed ack representation for fixed-shape ops.
    """

    request_id: int
    payload: Any = None
    error: str | None = None
    worker: int = 0
    op: str | None = None


class Codec(Protocol):
    """Payload serializer: turns frame objects into bytes and back."""

    name: str

    def encode(self, obj: Any) -> bytes: ...

    def decode(self, data: bytes) -> Any: ...


class PickleCodec:
    """The default codec (highest pickle protocol)."""

    name = "pickle"

    def encode(self, obj: Any) -> bytes:
        return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)

    def decode(self, data: bytes) -> Any:
        return pickle.loads(data)


DEFAULT_CODEC = PickleCodec()


# -- packed observe-batch fast path -------------------------------------------------

#: The op whose requests take the packed fast path.
OBSERVE_OP = "session_observe"

#: ``REPRO_WIRE_FASTPATH=0`` falls back to pickling observe batches
#: (decoding packed frames from a peer still works either way).
PACK_OBSERVE_BATCHES = os.environ.get("REPRO_WIRE_FASTPATH", "1") != "0"

#: request_id, session_id, event count, distinct-string count
_PACK_HEAD = struct.Struct(">qqIH")
_PACK_U16 = struct.Struct(">H")
_INT64_MIN, _INT64_MAX = -(1 << 63), (1 << 63) - 1
#: Largest integer an IEEE double represents exactly; integer delta
#: values beyond it would silently change through the ``d`` conversion.
_DOUBLE_EXACT_INT = 1 << 53


def pack_observe_request(request: "Request") -> bytes | None:
    """Struct-pack a ``session_observe`` request payload, or ``None``.

    Strictly shape-checked: anything that is not exactly the session
    surface's ``(session_id, [(process, local_time, props, deltas), ...])``
    (or whose integers overflow the packed field widths) returns ``None``
    and takes the pickle path — the fast path must never change what the
    peer decodes.

    Layout after the frame header: the fixed head; a *string table*
    (every distinct process name / proposition / delta key, u16-length-
    prefixed, in first-use order — event streams repeat a small
    vocabulary, so each string crosses the wire once); then seven
    *columnar* sections, each one uniform ``struct`` array (one C-level
    pack/unpack call per section instead of per event)::

        proc_idx:   nevents * H     (string-table index per event)
        time:       nevents * q
        nprops:     nevents * H
        props:      sum(nprops) * H (flattened string-table indices)
        delta_tag:  nevents * H     (0xFFFF = deltas is None, else count)
        delta_keys: sum(tags) * H
        delta_vals: sum(tags) * d

    Note one narrowing: integer delta *values* cross as IEEE doubles
    (the session surface's deltas are numeric sums, consumed as floats).
    """
    payload = request.payload
    if type(payload) is not tuple or len(payload) != 2:
        return None
    session_id, events = payload
    if (
        type(request.request_id) is not int
        or type(session_id) is not int
        or type(events) not in (list, tuple)
        or not _INT64_MIN <= request.request_id <= _INT64_MAX
        or not _INT64_MIN <= session_id <= _INT64_MAX
        or len(events) > 0xFFFFFFFF
    ):
        return None
    strings: dict[str, int] = {}
    proc_col: list[int] = []
    time_col: list[int] = []
    nprops_col: list[int] = []
    props_col: list[int] = []
    tag_col: list[int] = []
    key_col: list[int] = []
    value_col: list[float] = []
    # Hot loop: hoisted bound methods, and ``setdefault(s, len(strings))``
    # as the one-call string-table ref (the default is evaluated before
    # insertion, so it is exactly the next index on a miss).
    ref = strings.setdefault
    proc_append, time_append = proc_col.append, time_col.append
    nprops_append, props_append = nprops_col.append, props_col.append
    tag_append, key_append, value_append = (
        tag_col.append,
        key_col.append,
        value_col.append,
    )
    try:
        for event in events:
            if type(event) is not tuple or len(event) != 4:
                return None
            process, local_time, props, deltas = event
            proc_append(ref(process, len(strings)))
            time_append(local_time)
            if type(props) is not frozenset or len(props) >= 0xFFFF:
                return None
            nprops_append(len(props))
            for prop in props:
                props_append(ref(prop, len(strings)))
            if deltas is None:
                tag_append(0xFFFF)
            else:
                if type(deltas) is not dict or len(deltas) >= 0xFFFF:
                    return None
                tag_append(len(deltas))
                for key, value in deltas.items():
                    if type(value) is int and not (
                        -_DOUBLE_EXACT_INT <= value <= _DOUBLE_EXACT_INT
                    ):
                        return None  # would lose precision as a double
                    key_append(ref(key, len(strings)))
                    value_append(value)
        if len(strings) >= 0xFFFF:
            return None  # table indices are u16; a batch this odd takes pickle
        count = len(events)
        out = [
            _PACK_HEAD.pack(request.request_id, session_id, count, len(strings))
        ]
        for text in strings:
            data = text.encode()
            if len(data) > 0xFFFF:
                return None
            out.append(_PACK_U16.pack(len(data)))
            out.append(data)
        out.append(struct.pack(f">{count}H", *proc_col))
        out.append(struct.pack(f">{count}q", *time_col))
        out.append(struct.pack(f">{count}H", *nprops_col))
        out.append(struct.pack(f">{len(props_col)}H", *props_col))
        out.append(struct.pack(f">{count}H", *tag_col))
        out.append(struct.pack(f">{len(key_col)}H", *key_col))
        out.append(struct.pack(f">{len(value_col)}d", *value_col))
    except (struct.error, TypeError, AttributeError, OverflowError):
        # A value escaped the shape checks (non-int time, non-str prop or
        # key, boolean, out-of-range int, non-numeric delta): fall back.
        return None
    return b"".join(out)


# -- packed fixed-shape session calls (advance / poll / finish / open) ----------------

#: Ops whose requests take the :data:`FRAME_VERSION_PACKED_CALL` path.
ADVANCE_OP = "session_advance"
POLL_OP = "session_poll"
FINISH_OP = "session_finish"
OPEN_OP = "session_open"

#: opcode (1 = advance, 2 = poll, 3 = finish), request_id, session_id,
#: argument (the advance boundary; zero-padded for poll and finish).
_PACK_CALL = struct.Struct(">Bqqq")
_CALL_ADVANCE = 1
_CALL_POLL = 2
_CALL_FINISH = 3
#: Variable-length v3 opcodes: ``session_open`` requests and the two
#: session-lifecycle ack responses.  One opcode byte leads every v3
#: payload, so the decoder dispatches per opcode instead of insisting on
#: the fixed 25-byte shape.
_CALL_OPEN = 4
_ACK_OPEN = 5
_ACK_FINISH = 6

_PACK_OPEN_HEAD = struct.Struct(">Bqqq")  # opcode, request_id, session_id, epsilon
_PACK_ACK_FINISH_HEAD = struct.Struct(">Bqq")  # opcode, request_id, worker
_PACK_REPORT = struct.Struct(">qqqqB")  # index, events, traces, distinct, flags
_PACK_U32 = struct.Struct(">I")
_PACK_I64 = struct.Struct(">q")

#: ``session_open`` kwargs the packed shape understands; anything else in
#: the kwargs dict sends the request down the pickle path.
_OPEN_KWARGS = frozenset({"max_traces_per_segment", "backend"})


def _formula_wire_text(formula) -> bytes | None:
    """The formula's parseable text, or ``None`` when it does not round-trip.

    The packed path only ships formulas whose :func:`~repro.mtl.parser.parse`
    of ``str(formula)`` reproduces the value exactly — predicate atoms
    (which wrap callables) and any future non-printable node fail the
    check and take pickle, per the strict-shape contract.
    """
    from repro.mtl.parser import parse  # lazy: frames stays mtl-free otherwise

    try:
        text = str(formula)
        if parse(text) != formula:
            return None
    except Exception:  # noqa: BLE001 — any render/parse failure means pickle
        return None
    data = text.encode()
    if len(data) > 0xFFFF:
        return None
    return data


def pack_call_request(request: "Request") -> bytes | None:
    """Struct-pack a fixed-shape session call, or ``None``.

    Same contract as :func:`pack_observe_request`: strictly shape-checked
    (exact payload tuples of in-range ints), anything else returns
    ``None`` and takes the pickle path.  ``session_advance``,
    ``session_poll`` and ``session_finish`` each fit one fixed 25-byte
    struct, so the entire frame is a single C-level pack.
    """
    if type(request.request_id) is not int or not (
        _INT64_MIN <= request.request_id <= _INT64_MAX
    ):
        return None
    payload = request.payload
    if request.op == ADVANCE_OP:
        if type(payload) is not tuple or len(payload) != 2:
            return None
        session_id, boundary = payload
        if (
            type(session_id) is not int
            or type(boundary) is not int
            or not _INT64_MIN <= session_id <= _INT64_MAX
            or not _INT64_MIN <= boundary <= _INT64_MAX
        ):
            return None
        return _PACK_CALL.pack(_CALL_ADVANCE, request.request_id, session_id, boundary)
    if request.op in (POLL_OP, FINISH_OP):
        if type(payload) is not tuple or len(payload) != 1:
            return None
        (session_id,) = payload
        if type(session_id) is not int or not _INT64_MIN <= session_id <= _INT64_MAX:
            return None
        opcode = _CALL_POLL if request.op == POLL_OP else _CALL_FINISH
        return _PACK_CALL.pack(opcode, request.request_id, session_id, 0)
    return None


def pack_open_request(request: "Request") -> bytes | None:
    """Struct-pack a ``session_open`` request, or ``None``.

    Ships the formula as its parseable text (checked to round-trip, see
    :func:`_formula_wire_text`) and the session kwargs as tagged fields —
    only the exact surface the session layer sends
    (``max_traces_per_segment``: int or None, ``backend``: str) packs;
    any other kwarg, formula, or shape falls back to pickle.

    Layout after the opcode head (request_id, session_id, epsilon)::

        mt_tag:   B   (0 = kwarg absent, 1 = None, 2 = int64 follows)
        [mt:      q]
        be_tag:   B   (0 = kwarg absent, 1 = u16-prefixed text follows)
        [backend: u16 + bytes]
        formula:  u16 + bytes (parseable text)
    """
    payload = request.payload
    if type(payload) is not tuple or len(payload) != 4:
        return None
    session_id, formula, epsilon, kwargs = payload
    if (
        type(request.request_id) is not int
        or type(session_id) is not int
        or type(epsilon) is not int
        or type(kwargs) is not dict
        or not _INT64_MIN <= request.request_id <= _INT64_MAX
        or not _INT64_MIN <= session_id <= _INT64_MAX
        or not _INT64_MIN <= epsilon <= _INT64_MAX
        or not _OPEN_KWARGS.issuperset(kwargs)
    ):
        return None
    out = [
        _PACK_OPEN_HEAD.pack(_CALL_OPEN, request.request_id, session_id, epsilon)
    ]
    if "max_traces_per_segment" not in kwargs:
        out.append(b"\x00")
    else:
        max_traces = kwargs["max_traces_per_segment"]
        if max_traces is None:
            out.append(b"\x01")
        elif type(max_traces) is int and _INT64_MIN <= max_traces <= _INT64_MAX:
            out.append(b"\x02")
            out.append(_PACK_I64.pack(max_traces))
        else:
            return None
    if "backend" not in kwargs:
        out.append(b"\x00")
    else:
        backend = kwargs["backend"]
        if type(backend) is not str:
            return None
        data = backend.encode()
        if len(data) > 0xFFFF:
            return None
        out.append(b"\x01")
        out.append(_PACK_U16.pack(len(data)))
        out.append(data)
    formula_text = _formula_wire_text(formula)
    if formula_text is None:
        return None
    out.append(_PACK_U16.pack(len(formula_text)))
    out.append(formula_text)
    return b"".join(out)


def pack_ack_response(response: "Response") -> bytes | None:
    """Struct-pack a session-lifecycle ack response, or ``None``.

    Only successful acks pack (error responses carry arbitrary strings and
    stay pickled): a ``session_open`` ack is the echoed session id (one
    fixed struct), a ``session_finish`` ack is the stream's final
    :class:`~repro.monitor.verdicts.MonitorResult` — verdict counts,
    exactness flags, per-segment reports, and the formula as round-trip
    checked text.  Any shape surprise returns ``None`` → pickle.
    """
    if response.error is not None or type(response.request_id) is not int:
        return None
    if not (
        _INT64_MIN <= response.request_id <= _INT64_MAX
        and type(response.worker) is int
        and _INT64_MIN <= response.worker <= _INT64_MAX
    ):
        return None
    if response.op == OPEN_OP:
        session_id = response.payload
        if type(session_id) is not int or not (
            _INT64_MIN <= session_id <= _INT64_MAX
        ):
            return None
        return _PACK_CALL.pack(
            _ACK_OPEN, response.request_id, session_id, response.worker
        )
    if response.op == FINISH_OP:
        from repro.monitor.verdicts import MonitorResult, SegmentReport

        result = response.payload
        if type(result) is not MonitorResult:
            return None
        counts = result.verdict_counts
        if type(counts) is not dict or not all(
            type(k) is bool and type(v) is int and 0 <= v <= _INT64_MAX
            for k, v in counts.items()
        ):
            return None
        reports = result.segment_reports
        if len(reports) > 0xFFFFFFFF:
            return None
        formula_text = _formula_wire_text(result.formula)
        if formula_text is None:
            return None
        flags = (
            (1 if result.exhaustive else 0)
            | (2 if result.verdict_set_complete else 0)
            | (4 if True in counts else 0)
            | (8 if False in counts else 0)
        )
        out = [
            _PACK_ACK_FINISH_HEAD.pack(
                _ACK_FINISH, response.request_id, response.worker
            ),
            bytes([flags]),
        ]
        if True in counts:
            out.append(_PACK_I64.pack(counts[True]))
        if False in counts:
            out.append(_PACK_I64.pack(counts[False]))
        out.append(_PACK_U32.pack(len(reports)))
        for report in reports:
            if type(report) is not SegmentReport:
                return None
            try:
                out.append(
                    _PACK_REPORT.pack(
                        report.index,
                        report.events,
                        report.traces_enumerated,
                        report.distinct_residuals,
                        (1 if report.truncated else 0)
                        | (2 if report.saturated else 0)
                        | (4 if report.preempted else 0),
                    )
                )
            except struct.error:
                return None
        out.append(_PACK_U16.pack(len(formula_text)))
        out.append(formula_text)
        return b"".join(out)
    return None


def _read_u16_block(payload: bytes, offset: int) -> tuple[bytes, int]:
    (length,) = _PACK_U16.unpack_from(payload, offset)
    offset += 2
    end = offset + length
    if end > len(payload):
        raise ServiceError("packed call frame: length-prefixed block overrun")
    return payload[offset:end], end


def _unpack_open_request(payload: bytes) -> "Request":
    from repro.mtl.parser import parse

    _, request_id, session_id, epsilon = _PACK_OPEN_HEAD.unpack_from(payload, 0)
    offset = _PACK_OPEN_HEAD.size
    kwargs: dict[str, Any] = {}
    mt_tag = payload[offset]
    offset += 1
    if mt_tag == 1:
        kwargs["max_traces_per_segment"] = None
    elif mt_tag == 2:
        (kwargs["max_traces_per_segment"],) = _PACK_I64.unpack_from(payload, offset)
        offset += 8
    elif mt_tag != 0:
        raise ServiceError(f"packed open frame has unknown max-traces tag {mt_tag}")
    be_tag = payload[offset]
    offset += 1
    if be_tag == 1:
        data, offset = _read_u16_block(payload, offset)
        kwargs["backend"] = data.decode()
    elif be_tag != 0:
        raise ServiceError(f"packed open frame has unknown backend tag {be_tag}")
    text, offset = _read_u16_block(payload, offset)
    if offset != len(payload):
        raise ServiceError(
            f"packed open frame has {len(payload) - offset} trailing bytes"
        )
    formula = parse(text.decode())
    return Request(request_id, OPEN_OP, (session_id, formula, epsilon, kwargs))


def _unpack_finish_ack(payload: bytes) -> "Response":
    from repro.monitor.verdicts import MonitorResult, SegmentReport
    from repro.mtl.parser import parse

    _, request_id, worker = _PACK_ACK_FINISH_HEAD.unpack_from(payload, 0)
    offset = _PACK_ACK_FINISH_HEAD.size
    flags = payload[offset]
    offset += 1
    counts: dict[bool, int] = {}
    if flags & 4:
        (counts[True],) = _PACK_I64.unpack_from(payload, offset)
        offset += 8
    if flags & 8:
        (counts[False],) = _PACK_I64.unpack_from(payload, offset)
        offset += 8
    (nreports,) = _PACK_U32.unpack_from(payload, offset)
    offset += 4
    reports = []
    for _ in range(nreports):
        index, events, traces, distinct, rflags = _PACK_REPORT.unpack_from(
            payload, offset
        )
        offset += _PACK_REPORT.size
        reports.append(
            SegmentReport(
                index=index,
                events=events,
                traces_enumerated=traces,
                distinct_residuals=distinct,
                truncated=bool(rflags & 1),
                saturated=bool(rflags & 2),
                preempted=bool(rflags & 4),
            )
        )
    text, offset = _read_u16_block(payload, offset)
    if offset != len(payload):
        raise ServiceError(
            f"packed finish ack has {len(payload) - offset} trailing bytes"
        )
    result = MonitorResult(
        parse(text.decode()),
        verdict_counts=counts,
        segment_reports=reports,
        exhaustive=bool(flags & 1),
        verdict_set_complete=bool(flags & 2),
    )
    return Response(request_id, result, None, worker, op=FINISH_OP)


def unpack_call_request(payload: bytes) -> Any:
    """Decode a :data:`FRAME_VERSION_PACKED_CALL` payload.

    Dispatches on the leading opcode byte: the fixed-shape calls
    (advance / poll / finish) must be exactly one 25-byte struct, the
    variable-shape frames (open request, lifecycle acks) carry their own
    length-prefixed blocks.  Returns a :class:`Request` for request
    opcodes, a :class:`Response` for ack opcodes.
    """
    if not payload:
        raise ServiceError("packed call frame is empty")
    opcode = payload[0]
    try:
        if opcode in (_CALL_ADVANCE, _CALL_POLL, _CALL_FINISH, _ACK_OPEN):
            if len(payload) != _PACK_CALL.size:
                raise ServiceError(
                    f"packed call frame is {len(payload)} bytes, "
                    f"expected {_PACK_CALL.size}"
                )
            _, request_id, session_id, argument = _PACK_CALL.unpack(payload)
            if opcode == _CALL_ADVANCE:
                return Request(request_id, ADVANCE_OP, (session_id, argument))
            if opcode == _CALL_POLL:
                return Request(request_id, POLL_OP, (session_id,))
            if opcode == _CALL_FINISH:
                return Request(request_id, FINISH_OP, (session_id,))
            return Response(request_id, session_id, None, argument, op=OPEN_OP)
        if opcode == _CALL_OPEN:
            return _unpack_open_request(payload)
        if opcode == _ACK_FINISH:
            return _unpack_finish_ack(payload)
    except ServiceError:
        raise
    except Exception as exc:  # noqa: BLE001 — struct/decode errors on bad bytes
        raise ServiceError(f"corrupt packed call frame: {exc}") from None
    raise ServiceError(f"packed call frame has unknown opcode {opcode}")


def unpack_observe_request(payload: bytes) -> "Request":
    """Decode a :data:`FRAME_VERSION_PACKED` payload back into a request."""
    try:
        request_id, session_id, count, nstrings = _PACK_HEAD.unpack_from(payload, 0)
        offset = _PACK_HEAD.size
        strings: list[str] = []
        for _ in range(nstrings):
            (length,) = _PACK_U16.unpack_from(payload, offset)
            offset += 2
            end = offset + length
            if end > len(payload):
                raise ServiceError("packed observe frame: string table overrun")
            strings.append(payload[offset:end].decode())
            offset = end
        proc_col = struct.unpack_from(f">{count}H", payload, offset)
        offset += 2 * count
        time_col = struct.unpack_from(f">{count}q", payload, offset)
        offset += 8 * count
        nprops_col = struct.unpack_from(f">{count}H", payload, offset)
        offset += 2 * count
        total_props = sum(nprops_col)
        props_col = struct.unpack_from(f">{total_props}H", payload, offset)
        offset += 2 * total_props
        tag_col = struct.unpack_from(f">{count}H", payload, offset)
        offset += 2 * count
        total_deltas = sum(tag for tag in tag_col if tag != 0xFFFF)
        key_col = struct.unpack_from(f">{total_deltas}H", payload, offset)
        offset += 2 * total_deltas
        value_col = struct.unpack_from(f">{total_deltas}d", payload, offset)
        offset += 8 * total_deltas
        if offset != len(payload):
            raise ServiceError(
                f"packed observe frame has {len(payload) - offset} trailing bytes"
            )
        events = []
        events_append = events.append
        # Identical prop-index runs decode to one shared frozenset — live
        # feeds repeat a small vocabulary of proposition sets.
        prop_sets: dict[tuple, frozenset] = {}
        prop_at = 0
        delta_at = 0
        for i in range(count):
            nprops = nprops_col[i]
            prop_idx = props_col[prop_at : prop_at + nprops]
            prop_at += nprops
            props = prop_sets.get(prop_idx)
            if props is None:
                props = frozenset(strings[j] for j in prop_idx)
                prop_sets[prop_idx] = props
            tag = tag_col[i]
            deltas = None
            if tag != 0xFFFF:
                deltas = {
                    strings[key_col[delta_at + j]]: value_col[delta_at + j]
                    for j in range(tag)
                }
                delta_at += tag
            events_append((strings[proc_col[i]], time_col[i], props, deltas))
    except (struct.error, UnicodeDecodeError, IndexError) as exc:
        raise ServiceError(f"corrupt packed observe frame: {exc}") from None
    return Request(request_id, OBSERVE_OP, (session_id, events))


def encode_frame(obj: Any, codec: Codec = DEFAULT_CODEC) -> bytes:
    """Serialize one frame: versioned header + payload.

    ``session_observe`` requests take the struct-packed fast path (frame
    version :data:`FRAME_VERSION_PACKED`); ``session_advance``,
    ``session_poll``, ``session_finish`` and ``session_open`` requests —
    plus the successful open/finish ack responses — the packed-call one
    (:data:`FRAME_VERSION_PACKED_CALL`); everything else goes through
    the codec under :data:`FRAME_VERSION`.
    """
    if PACK_OBSERVE_BATCHES and codec is DEFAULT_CODEC:
        # Only beside the stock pickle codec: a custom codec (compressing,
        # encrypting, cross-language) must see every payload, per the
        # codec contract above.
        packed = None
        version = FRAME_VERSION_PACKED_CALL
        if type(obj) is Request:
            if obj.op == OBSERVE_OP:
                packed = pack_observe_request(obj)
                version = FRAME_VERSION_PACKED
            elif obj.op in (ADVANCE_OP, POLL_OP, FINISH_OP):
                packed = pack_call_request(obj)
            elif obj.op == OPEN_OP:
                packed = pack_open_request(obj)
        elif type(obj) is Response and obj.op in (OPEN_OP, FINISH_OP):
            packed = pack_ack_response(obj)
        if packed is not None:
            if len(packed) > MAX_FRAME_BYTES:
                raise ServiceError(
                    f"frame payload of {len(packed)} bytes exceeds the "
                    f"{MAX_FRAME_BYTES}-byte frame limit"
                )
            return _HEADER.pack(FRAME_MAGIC, version, len(packed)) + packed
    payload = codec.encode(obj)
    if len(payload) > MAX_FRAME_BYTES:
        raise ServiceError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame limit"
        )
    return _HEADER.pack(FRAME_MAGIC, FRAME_VERSION, len(payload)) + payload


def encode_response_with_fallback(response: Response, codec: Codec = DEFAULT_CODEC) -> bytes:
    """Frame a response, substituting an error response when the payload
    cannot cross the codec.

    A payload that will not serialize (a registered custom engine
    returning an unpicklable result, say) must fail only its own request
    — the substitute keeps the request id so client bookkeeping still
    balances.  Shared by every response writer so the fallback semantics
    cannot drift between backends.
    """
    try:
        return encode_frame(response, codec)
    except Exception as exc:  # noqa: BLE001 — e.g. an unpicklable payload
        return encode_frame(
            Response(
                response.request_id,
                None,
                f"{type(exc).__name__}: response not picklable: {exc}",
                response.worker,
            ),
            codec,
        )


def split_header(header: bytes) -> tuple[int, int]:
    """Validate a frame header; return ``(version, payload length)``."""
    if len(header) != HEADER_SIZE:
        raise ServiceError(
            f"truncated frame header: got {len(header)} of {HEADER_SIZE} bytes"
        )
    magic, version, length = _HEADER.unpack(header)
    if magic != FRAME_MAGIC:
        raise ServiceError(f"bad frame magic {magic!r} (not a transport peer?)")
    if version not in KNOWN_FRAME_VERSIONS:
        raise ServiceError(
            f"frame version {version} from peer, this side speaks "
            f"{', '.join(map(str, KNOWN_FRAME_VERSIONS))}"
        )
    if length > MAX_FRAME_BYTES:
        raise ServiceError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte frame limit"
        )
    return version, length


def decode_header(header: bytes) -> int:
    """Validate a frame header; return the payload length."""
    return split_header(header)[1]


def _decode_payload(version: int, payload: bytes, codec: Codec) -> Any:
    if version == FRAME_VERSION_PACKED:
        return unpack_observe_request(payload)
    if version == FRAME_VERSION_PACKED_CALL:
        return unpack_call_request(payload)
    return codec.decode(payload)


def decode_frame(data: bytes, codec: Codec = DEFAULT_CODEC) -> Any:
    """Decode one complete frame (header + payload) from ``data``."""
    version, length = split_header(data[:HEADER_SIZE])
    payload = data[HEADER_SIZE:]
    if len(payload) != length:
        raise ServiceError(
            f"frame length prefix says {length} bytes, got {len(payload)}"
        )
    return _decode_payload(version, payload, codec)


def write_frame(sock, obj: Any, codec: Codec = DEFAULT_CODEC) -> None:
    """Write one frame to a stream socket."""
    sock.sendall(encode_frame(obj, codec))


def _read_exact(sock, count: int) -> bytes | None:
    """Read exactly ``count`` bytes; None on EOF at a frame boundary."""
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if not chunks:
                return None
            raise ServiceError(
                f"peer closed mid-frame ({count - remaining} of {count} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock, codec: Codec = DEFAULT_CODEC) -> Any | None:
    """Read one frame from a stream socket; None on clean EOF.

    EOF *between* frames is a normal close; EOF inside a frame (or a
    header that fails validation) raises :class:`~repro.errors.ServiceError`.
    """
    header = _read_exact(sock, HEADER_SIZE)
    if header is None:
        return None
    version, length = split_header(header)
    payload = _read_exact(sock, length) if length else b""
    if payload is None:
        raise ServiceError(f"peer closed before the {length}-byte frame payload")
    return _decode_payload(version, payload, codec)
