"""Typed Request/Response frames and their wire encoding.

The service's wire protocol used to be implicit: plain dataclasses
pickled through ``multiprocessing`` queues and pipes.  This module makes
it explicit so the same frames can cross process boundaries *and*
sockets:

* :class:`Request` / :class:`Response` — the only two frame types.  One
  request produces exactly one response, matched by ``request_id``;
  responses may interleave arbitrarily across requests, so clients must
  resolve by id, never by arrival order.  Two ids are reserved:
  :data:`HEARTBEAT_ID` (liveness pings, answered out-of-band and never
  surfaced to callers) and :data:`CONTROL_ID` (fire-and-forget control
  frames such as ``drop``, which get no response).

* **Versioned, length-prefixed encoding** — every frame on the wire is
  ``magic (2) | version (1) | length (4, big-endian) | payload``.  The
  length prefix makes stream transports (TCP) self-delimiting; the magic
  and version bytes reject cross-version peers with a clear
  :class:`~repro.errors.ServiceError` instead of a pickle explosion.

* **Codec interface** — the payload bytes are produced by a
  :class:`Codec` (default :class:`PickleCodec`).  Pickle is the codec,
  not the protocol: a msgpack/json codec for cross-language workers only
  has to implement ``encode``/``decode``.
"""

from __future__ import annotations

import pickle
import struct
from dataclasses import dataclass
from typing import Any, Protocol

from repro.errors import ServiceError

#: Reserved request id for liveness pings (answered by the peer's reader
#: thread even while its executor is busy; never resolved to a future).
HEARTBEAT_ID = -1

#: Reserved request id for fire-and-forget control frames (no response).
CONTROL_ID = -2

#: Session-migration ops (see the frame-op table in DESIGN.md): snapshot
#: serializes one live session's full monitor state off its worker;
#: restore rehydrates that state under the same session id on another.
#: Named here — not just in the worker's dispatch — because both sides
#: of the wire and the client-side migration logic must agree on them.
SNAPSHOT_SESSION = "session_snapshot"
RESTORE_SESSION = "session_restore"

#: Every op the request executor understands, for conformance checks and
#: protocol docs.  ``drop`` rides on :data:`CONTROL_ID` and produces no
#: response; everything else produces exactly one.
KNOWN_OPS = (
    "monitor",
    "shard",
    "session_open",
    "session_observe",
    "session_advance",
    "session_poll",
    "session_finish",
    "session_close",
    SNAPSHOT_SESSION,
    RESTORE_SESSION,
    "ping",
    "echo",
    "sleep",
    "crash",
    "drop",
)

FRAME_MAGIC = b"RV"
FRAME_VERSION = 1

#: Sanity bound: a length prefix beyond this is treated as a corrupt or
#: hostile stream, not an allocation request.
MAX_FRAME_BYTES = 256 * 1024 * 1024

_HEADER = struct.Struct(">2sBI")
HEADER_SIZE = _HEADER.size


@dataclass
class Request:
    """One unit of work for a pool worker."""

    request_id: int
    op: str
    payload: Any


@dataclass
class Response:
    """The worker's answer to one request."""

    request_id: int
    payload: Any = None
    error: str | None = None
    worker: int = 0


class Codec(Protocol):
    """Payload serializer: turns frame objects into bytes and back."""

    name: str

    def encode(self, obj: Any) -> bytes: ...

    def decode(self, data: bytes) -> Any: ...


class PickleCodec:
    """The default codec (highest pickle protocol)."""

    name = "pickle"

    def encode(self, obj: Any) -> bytes:
        return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)

    def decode(self, data: bytes) -> Any:
        return pickle.loads(data)


DEFAULT_CODEC = PickleCodec()


def encode_frame(obj: Any, codec: Codec = DEFAULT_CODEC) -> bytes:
    """Serialize one frame: versioned header + codec payload."""
    payload = codec.encode(obj)
    if len(payload) > MAX_FRAME_BYTES:
        raise ServiceError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame limit"
        )
    return _HEADER.pack(FRAME_MAGIC, FRAME_VERSION, len(payload)) + payload


def encode_response_with_fallback(response: Response, codec: Codec = DEFAULT_CODEC) -> bytes:
    """Frame a response, substituting an error response when the payload
    cannot cross the codec.

    A payload that will not serialize (a registered custom engine
    returning an unpicklable result, say) must fail only its own request
    — the substitute keeps the request id so client bookkeeping still
    balances.  Shared by every response writer so the fallback semantics
    cannot drift between backends.
    """
    try:
        return encode_frame(response, codec)
    except Exception as exc:  # noqa: BLE001 — e.g. an unpicklable payload
        return encode_frame(
            Response(
                response.request_id,
                None,
                f"{type(exc).__name__}: response not picklable: {exc}",
                response.worker,
            ),
            codec,
        )


def decode_header(header: bytes) -> int:
    """Validate a frame header; return the payload length."""
    if len(header) != HEADER_SIZE:
        raise ServiceError(
            f"truncated frame header: got {len(header)} of {HEADER_SIZE} bytes"
        )
    magic, version, length = _HEADER.unpack(header)
    if magic != FRAME_MAGIC:
        raise ServiceError(f"bad frame magic {magic!r} (not a transport peer?)")
    if version != FRAME_VERSION:
        raise ServiceError(
            f"frame version {version} from peer, this side speaks {FRAME_VERSION}"
        )
    if length > MAX_FRAME_BYTES:
        raise ServiceError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte frame limit"
        )
    return length


def decode_frame(data: bytes, codec: Codec = DEFAULT_CODEC) -> Any:
    """Decode one complete frame (header + payload) from ``data``."""
    length = decode_header(data[:HEADER_SIZE])
    payload = data[HEADER_SIZE:]
    if len(payload) != length:
        raise ServiceError(
            f"frame length prefix says {length} bytes, got {len(payload)}"
        )
    return codec.decode(payload)


def write_frame(sock, obj: Any, codec: Codec = DEFAULT_CODEC) -> None:
    """Write one frame to a stream socket."""
    sock.sendall(encode_frame(obj, codec))


def _read_exact(sock, count: int) -> bytes | None:
    """Read exactly ``count`` bytes; None on EOF at a frame boundary."""
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if not chunks:
                return None
            raise ServiceError(
                f"peer closed mid-frame ({count - remaining} of {count} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock, codec: Codec = DEFAULT_CODEC) -> Any | None:
    """Read one frame from a stream socket; None on clean EOF.

    EOF *between* frames is a normal close; EOF inside a frame (or a
    header that fails validation) raises :class:`~repro.errors.ServiceError`.
    """
    header = _read_exact(sock, HEADER_SIZE)
    if header is None:
        return None
    length = decode_header(header)
    payload = _read_exact(sock, length) if length else b""
    if payload is None:
        raise ServiceError(f"peer closed before the {length}-byte frame payload")
    return codec.decode(payload)
