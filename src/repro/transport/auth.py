"""Shared-token authentication for networked transport peers.

The TCP surface used to trust its network outright: anyone who could
reach a :class:`~repro.transport.agent.WorkerAgent` port could execute
arbitrary code in the agent process (the frames carry pickle payloads
and operational ops).  This module gates every networked connection —
worker agents *and* the cluster registry — behind an HMAC
challenge/response handshake keyed on a shared token:

* the **server** (agent/registry) sends a one-time nonce as the very
  first frame after accept (``auth_challenge``);
* the **client** answers with ``HMAC-SHA256(token, nonce)``
  (``auth_response``) before any other frame;
* the server verifies the digest and acknowledges (or rejects with a
  **typed error frame** — a :class:`~repro.transport.frames.Response`
  carrying an ``AuthError: ...`` string — never a bare socket close, so
  the client can surface a clear :class:`~repro.errors.ServiceError`
  naming the endpoint).

Only after the acknowledgement does the server dispatch frames to its
executor: an unauthenticated peer is rejected *before* any payload it
sent is unpickled or executed.  The handshake runs even when no token is
configured (the server then accepts any digest), so the greeting doubles
as a protocol check; a token on either side makes it enforcing.

The token comes from an explicit ``token=`` argument or the
:data:`TOKEN_ENV_VAR` environment variable (``REPRO_AGENT_TOKEN``) —
the same resolution on both sides, so a fleet exported one env var is a
cluster.  The handshake authenticates and replay-protects connection
*establishment*; it does not encrypt the stream.  Confidentiality and
tamper-proofing still require a private network or a TLS/SSH tunnel in
front (see the trust-boundary note in :mod:`repro.transport.agent`).
"""

from __future__ import annotations

import hashlib
import hmac
import os
import secrets
import socket

from repro.errors import ServiceError
from repro.transport.frames import (
    AUTH_ID,
    DEFAULT_CODEC,
    Codec,
    Request,
    Response,
    read_frame,
    write_frame,
)

#: Environment variable both sides resolve a missing ``token=`` from.
TOKEN_ENV_VAR = "REPRO_AGENT_TOKEN"

#: Handshake frame ops (ride on the reserved :data:`~repro.transport.frames.AUTH_ID`).
AUTH_CHALLENGE_OP = "auth_challenge"
AUTH_RESPONSE_OP = "auth_response"

#: Payload of the server's acknowledgement response.
AUTH_OK = "authenticated"

#: Prefix of every typed rejection (the conformance suite keys on it).
AUTH_ERROR_PREFIX = "AuthError"

#: Bound on the whole handshake: a silent or hostile peer must release
#: the server's handler (and the client's connect) instead of parking it.
HANDSHAKE_TIMEOUT = 10.0


def resolve_token(token: str | None) -> str | None:
    """Normalize a token argument: explicit value, else the environment.

    An explicit empty string *disables* auth even when the environment
    variable is set (the escape hatch for loopback tooling); ``None``
    defers to :data:`TOKEN_ENV_VAR`.
    """
    if token is not None:
        return token or None
    return os.environ.get(TOKEN_ENV_VAR) or None


def auth_digest(token: str, nonce: str) -> str:
    """The challenge answer: hex HMAC-SHA256 of the nonce under the token."""
    return hmac.new(token.encode(), nonce.encode(), hashlib.sha256).hexdigest()


def server_handshake(
    sock: socket.socket,
    codec: Codec = DEFAULT_CODEC,
    token: str | None = None,
    timeout: float = HANDSHAKE_TIMEOUT,
) -> object | None:
    """Run the server half of the handshake on a just-accepted socket.

    Sends the challenge, reads the peer's first frame, and verifies.
    Returns ``None`` on success.  On failure the typed rejection frame
    is written (best-effort) and :class:`~repro.errors.ServiceError`
    is raised — the caller must drop the connection without dispatching
    anything the peer sent.

    One leniency, for tokenless servers only: a peer whose first frame
    is a regular request (not an ``auth_response``) is accepted and that
    frame is **returned** so the caller can process it — an
    unauthenticated deployment keeps working with any frame-speaking
    client.  With a token configured the first frame *must* be the auth
    response; anything else is rejected before dispatch.
    """
    nonce = secrets.token_hex(16)
    previous_timeout = sock.gettimeout()
    sock.settimeout(timeout)
    try:
        write_frame(
            sock,
            Request(
                AUTH_ID,
                AUTH_CHALLENGE_OP,
                {"nonce": nonce, "required": token is not None},
            ),
            codec,
        )
        try:
            frame = read_frame(sock, codec)
        except (ServiceError, OSError) as exc:
            raise ServiceError(f"auth handshake failed: {exc}") from exc
        if frame is None:
            raise ServiceError("peer closed during the auth handshake")
        is_auth_response = (
            isinstance(frame, Request)
            and frame.request_id == AUTH_ID
            and frame.op == AUTH_RESPONSE_OP
        )
        if not is_auth_response:
            if token is None:
                return frame  # tokenless leniency: first real frame
            _reject(
                sock,
                codec,
                f"{AUTH_ERROR_PREFIX}: this endpoint requires a shared "
                f"auth token (configure token=/{TOKEN_ENV_VAR} on the client)",
            )
            raise ServiceError("unauthenticated peer rejected (no auth response)")
        digest = frame.payload
        if token is not None and (
            not isinstance(digest, str)
            or not hmac.compare_digest(digest, auth_digest(token, nonce))
        ):
            _reject(
                sock,
                codec,
                f"{AUTH_ERROR_PREFIX}: shared-token digest mismatch "
                f"(wrong or missing token)",
            )
            raise ServiceError("peer failed the shared-token challenge")
        write_frame(sock, Response(AUTH_ID, AUTH_OK, None), codec)
        return None
    finally:
        sock.settimeout(previous_timeout)


def _reject(sock: socket.socket, codec: Codec, error: str) -> None:
    """Ship the typed rejection; best-effort (the peer may be gone)."""
    try:
        write_frame(sock, Response(AUTH_ID, None, error), codec)
    except (ServiceError, OSError):
        pass


def client_handshake(
    sock: socket.socket,
    codec: Codec = DEFAULT_CODEC,
    token: str | None = None,
    endpoint: str = "peer",
    timeout: float = HANDSHAKE_TIMEOUT,
) -> None:
    """Run the client half on a just-connected socket.

    Reads the server's challenge, answers it, and waits for the
    acknowledgement.  Raises :class:`~repro.errors.ServiceError` naming
    ``endpoint`` on any rejection or protocol mismatch — including the
    server's typed ``AuthError`` frame, which arrives here verbatim.
    """
    previous_timeout = sock.gettimeout()
    sock.settimeout(timeout)
    try:
        try:
            frame = read_frame(sock, codec)
        except (ServiceError, OSError) as exc:
            raise ServiceError(
                f"auth handshake with {endpoint} failed: {exc}"
            ) from exc
        if frame is None:
            raise ServiceError(f"{endpoint} closed during the auth handshake")
        if not (
            isinstance(frame, Request)
            and frame.request_id == AUTH_ID
            and frame.op == AUTH_CHALLENGE_OP
            and isinstance(frame.payload, dict)
            and isinstance(frame.payload.get("nonce"), str)
        ):
            raise ServiceError(
                f"{endpoint} did not open with an auth challenge "
                f"(not a transport peer, or a cross-version one?)"
            )
        required = bool(frame.payload.get("required"))
        if required and token is None:
            raise ServiceError(
                f"worker endpoint {endpoint} requires a shared auth token: "
                f"pass token=... or set {TOKEN_ENV_VAR}"
            )
        write_frame(
            sock,
            Request(AUTH_ID, AUTH_RESPONSE_OP, auth_digest(token or "", frame.payload["nonce"])),
            codec,
        )
        try:
            reply = read_frame(sock, codec)
        except (ServiceError, OSError) as exc:
            raise ServiceError(
                f"auth handshake with {endpoint} failed: {exc}"
            ) from exc
        if reply is None:
            raise ServiceError(
                f"{endpoint} closed during the auth handshake "
                f"(rejected without a typed error frame?)"
            )
        if not (isinstance(reply, Response) and reply.request_id == AUTH_ID):
            raise ServiceError(f"{endpoint} answered the handshake with protocol noise")
        if reply.error is not None:
            raise ServiceError(f"authentication rejected by {endpoint}: {reply.error}")
    finally:
        sock.settimeout(previous_timeout)
