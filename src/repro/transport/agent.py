"""The worker agent: a TCP listener hosting service workers.

``python -m repro.transport.agent --port 7701`` (or the
``scripts/run_worker_agent.py`` wrapper) turns any host into a pool
endpoint: a :class:`~repro.service.MonitorService` built with
``endpoints=["tcp://host:7701", ...]`` then ships the same
Request/Response frames to it that local workers get over queues.

Each *accepted connection* is one logical worker: it gets its own
:class:`~repro.service.worker.RequestExecutor` (private session
registry, private drop set) and a pair of threads —

* a **reader** that ingests frames continuously: heartbeats are answered
  inline (so liveness stays fresh during long monitor tasks), ``drop``
  control frames take effect immediately, and everything else queues for
  the executor in FIFO order;
* an **executor** that runs requests one at a time and writes responses
  back under a per-connection write lock.

Requests on one connection therefore execute strictly in send order —
the same ordering guarantee a local worker's FIFO inbox gives — while
cancellation and liveness stay responsive out-of-band.

**Two agent modes** decide where the executor runs:

* the default **thread mode** runs it on a thread in the agent process —
  one agent process is one CPU's worth of workers (executors share the
  GIL), so real parallelism means one agent per core;
* **process mode** (:class:`ProcessPoolAgent`, ``--processes``) forks one
  executor *child process* per accepted connection, running the exact
  local-backend worker loop (:func:`~repro.service.worker.service_worker_loop`)
  behind the socket — a single agent then lends a whole multi-core host,
  with per-connection isolation for free (a crashing request kills only
  its own connection's child).  The handler still answers heartbeats
  inline, so liveness stays fresh while a child grinds.

**Authentication**: with a shared token configured (``--token`` /
``REPRO_AGENT_TOKEN``), every accepted connection must pass the HMAC
challenge/response handshake (:mod:`repro.transport.auth`) before a
single frame is dispatched; failures are rejected with a typed
``AuthError`` response frame, never a bare close.

.. warning:: **Trust boundary.**  The wire protocol carries pickle
   payloads and includes operational ops (``crash``, ``sleep``), so any
   *authenticated* peer can execute arbitrary code in the agent (or its
   executor children) — the same trust model as ``multiprocessing``
   itself, stretched over a socket.  The shared token keeps
   unauthenticated peers out, but it does not encrypt the stream: still
   bind agents to loopback or a private network you control (a service
   mesh, an SSH tunnel, a VPN) rather than the open internet.
"""

from __future__ import annotations

import argparse
import os
import signal
import socket
import sys
import threading
import time
from collections import deque
from typing import Callable

from repro.errors import ServiceError
from repro.transport.auth import resolve_token, server_handshake
from repro.transport.base import Listener
from repro.transport.frames import (
    DEFAULT_CODEC,
    HEARTBEAT_ID,
    Codec,
    Request,
    Response,
    encode_frame,
    encode_response_with_fallback,
    read_frame,
)

#: Printed (with the bound address) once the agent accepts connections;
#: spawners wait for this line to learn an ephemeral port.
READY_PREFIX = "worker-agent listening on "


def _default_executor_factory() -> Callable:
    # Lazy import: keeps the transport layer importable on its own (the
    # service worker imports transport frames).
    from repro.service.worker import RequestExecutor

    return RequestExecutor


class WorkerAgent(Listener):
    """Hosts one worker per accepted connection on ``host:port``.

    ``port=0`` binds an ephemeral port (read :attr:`address` after
    :meth:`start`).  ``executor_factory`` builds the per-connection
    request executor; it defaults to the monitor service's.  ``token``
    gates connections behind the shared-token handshake (``None``
    resolves ``REPRO_AGENT_TOKEN``; empty string disables).
    ``processes=True`` forks one executor child per connection instead
    of running it on an agent thread (see :class:`ProcessPoolAgent`).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        codec: Codec = DEFAULT_CODEC,
        executor_factory: Callable | None = None,
        token: str | None = None,
        processes: bool = False,
    ) -> None:
        self._host = host
        self._port = port
        self._codec = codec
        self._executor_factory = executor_factory or _default_executor_factory()
        self._token = resolve_token(token)
        self._processes = processes
        self._sock: socket.socket | None = None
        self._closed = False
        self._lock = threading.Lock()
        self._handlers: list = []
        self._accept_thread: threading.Thread | None = None

    @property
    def address(self) -> str:
        if self._sock is None:
            raise ServiceError("worker agent is not listening yet")
        return f"{self._host}:{self._port}"

    @property
    def port(self) -> int:
        if self._sock is None:
            raise ServiceError("worker agent is not listening yet")
        return self._port

    @property
    def authenticated(self) -> bool:
        """True when a shared token gates this agent's connections."""
        return self._token is not None

    def active_connections(self) -> int:
        """Currently served peer connections (drain/ops signal)."""
        with self._lock:
            return sum(1 for handler in self._handlers if handler.running)

    def start(self) -> None:
        if self._sock is not None:
            return
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            sock.bind((self._host, self._port))
        except OSError as exc:
            sock.close()
            raise ServiceError(
                f"worker agent could not bind {self._host}:{self._port}: {exc}"
            ) from exc
        sock.listen()
        self._port = sock.getsockname()[1]
        self._sock = sock
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"worker-agent-{self._port}", daemon=True
        )
        self._accept_thread.start()

    def drain(self, timeout: float = 30.0) -> bool:
        """Wait for every live peer connection to finish (graceful leave).

        Used by the SIGTERM path after the registry leave is announced:
        services react to the leave by migrating sessions off and
        closing their connections, which this call observes as handlers
        winding down.  Returns True when the agent is idle, False when
        the deadline passed with peers still attached.
        """
        deadline = time.monotonic() + max(0.0, timeout)
        while self.active_connections() > 0:
            if time.monotonic() >= deadline:
                return False
            time.sleep(0.05)
        return True

    def close(self) -> None:
        """Stop accepting, drop live peers (connects are then refused)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            handlers, self._handlers = self._handlers, []
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        for handler in handlers:
            handler.stop()
        if self._accept_thread is not None:
            self._accept_thread.join(1.0)

    def __enter__(self) -> "WorkerAgent":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                client, peer = self._sock.accept()
            except OSError:
                return  # listener closed
            client.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            if self._processes:
                handler = _ProcessConnectionHandler(
                    client, peer, self._codec, self._token
                )
            else:
                handler = _ConnectionHandler(
                    client, peer, self._codec, self._executor_factory(), self._token
                )
            with self._lock:
                if self._closed:
                    handler.stop()
                    return
                self._handlers = [h for h in self._handlers if h.running]
                self._handlers.append(handler)
            handler.start()


class ProcessPoolAgent(WorkerAgent):
    """A worker agent that forks one executor process per connection.

    One ``ProcessPoolAgent`` lends a whole multi-core host to the pool:
    a service that opens N connections to it gets N *processes*, not N
    GIL-sharing threads, so ``endpoints=["tcp://host:7701"] * cores``
    scales like one agent-per-core used to — with one listener to
    deploy, register, and authenticate.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        codec: Codec = DEFAULT_CODEC,
        token: str | None = None,
    ) -> None:
        super().__init__(host, port, codec=codec, token=token, processes=True)


class _ConnectionHandler:
    """One accepted peer: reader thread + executor thread + write lock."""

    def __init__(self, sock, peer, codec: Codec, executor, token: str | None = None) -> None:
        self._sock = sock
        self._peer = peer
        self._codec = codec
        self._executor = executor
        self._token = token
        self._write_lock = threading.Lock()
        self._pending: deque[Request] = deque()
        self._wakeup = threading.Condition()
        self._stopped = False
        name = f"agent-peer-{peer[0]}:{peer[1]}"
        self._reader = threading.Thread(
            target=self._read_loop, name=f"{name}-reader", daemon=True
        )
        self._runner = threading.Thread(
            target=self._run_loop, name=f"{name}-executor", daemon=True
        )

    @property
    def running(self) -> bool:
        return not self._stopped

    def start(self) -> None:
        self._reader.start()
        self._runner.start()

    def stop(self) -> None:
        self._stopped = True
        # Shutdown before close: close() alone does not wake a reader
        # blocked in recv (the file description stays open in-kernel).
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass
        with self._wakeup:
            self._wakeup.notify_all()

    def _read_loop(self) -> None:
        # Gate: nothing is dispatched until the peer authenticates.  The
        # tokenless leniency hands back the peer's first regular frame.
        try:
            leftover = server_handshake(self._sock, self._codec, self._token)
        except Exception:  # noqa: BLE001 — hostile pre-auth bytes (bad
            # pickle, torn stream) must close the connection cleanly, not
            # kill this thread with the socket still registered.
            self.stop()
            return
        if leftover is not None:
            self._ingest(leftover)
        while not self._stopped:
            try:
                frame = read_frame(self._sock, self._codec)
            except Exception:  # noqa: BLE001 — broken stream or undecodable frame
                frame = None
            if frame is None:  # peer gone/unusable: discard this worker's state
                break
            self._ingest(frame)
        self.stop()

    def _ingest(self, frame) -> None:
        if not isinstance(frame, Request):
            return
        if frame.request_id == HEARTBEAT_ID:
            # Answered here, not in the executor: a pong must not
            # queue behind a long monitor task or liveness would
            # false-positive on a merely busy worker.
            self._send(Response(HEARTBEAT_ID, "pong", None, self._executor.pid))
            return
        acks: list[Response] = []
        with self._wakeup:
            if self._executor.ingest(frame):
                self._pending.append(frame)
            elif self._executor.pending_acks:
                # A drop for a frame that never arrived mints its ack in
                # ingest; ship it from here (the reader), since nothing
                # will ever reach the executor thread to trigger it.
                acks, self._executor.pending_acks = self._executor.pending_acks, []
            self._wakeup.notify_all()
        for ack in acks:
            self._send(ack)

    def _run_loop(self) -> None:
        while True:
            with self._wakeup:
                while not self._pending and not self._stopped:
                    self._wakeup.wait()
                if self._stopped and not self._pending:
                    return
                request = self._pending.popleft()
            response = self._executor.execute(request)
            if response is None:
                continue  # already answered by an immediate drop-ack
            if not self._send(response):
                return

    def _send(self, response: Response) -> bool:
        frame = encode_response_with_fallback(response, self._codec)
        try:
            with self._write_lock:
                self._sock.sendall(frame)
        except OSError:
            self.stop()
            return False
        return True


class _ProcessConnectionHandler:
    """One accepted peer backed by a forked executor child process.

    The child runs :func:`~repro.service.worker.service_worker_loop` —
    the exact local-backend worker body — over a private inbox queue and
    response pipe, so thread mode and process mode stay behaviourally
    identical by construction.  The handler is a frame pump:

    * reader thread: socket frames → heartbeats answered inline (a pong
      must never wait on a busy child), everything else re-framed into
      the child's inbox (``drop`` control frames included — the worker
      loop's opportunistic drain gives them overtaking semantics);
    * pump thread: response frames off the child's pipe → socket,
      verbatim (the child already framed them).

    Child death (a ``crash`` op, an OOM kill) surfaces as pipe EOF; the
    handler then drops the socket so the service sees the standard
    peer-loss signal and runs its recovery path.
    """

    def __init__(self, sock, peer, codec: Codec, token: str | None = None) -> None:
        self._sock = sock
        self._peer = peer
        self._codec = codec
        self._token = token
        self._write_lock = threading.Lock()
        self._stopped = False
        self._stop_lock = threading.Lock()
        self._process = None
        self._inbox = None
        self._pipe = None
        self._name = f"agent-child-{peer[0]}:{peer[1]}"
        self._reader = threading.Thread(
            target=self._read_loop, name=f"{self._name}-reader", daemon=True
        )
        self._pump: threading.Thread | None = None

    @property
    def running(self) -> bool:
        return not self._stopped

    def start(self) -> None:
        self._reader.start()

    def stop(self) -> None:
        with self._stop_lock:
            if self._stopped:
                return
            self._stopped = True
        # Shutdown before close: close() alone does not wake a reader
        # blocked in recv (the file description stays open in-kernel).
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass
        process, inbox = self._process, self._inbox
        if inbox is not None:
            try:
                inbox.put(None)  # FIFO sentinel: backlog drains, then exit
            except Exception:  # noqa: BLE001 — queue already broken
                pass
        if process is not None:
            process.join(2.0)
            if process.is_alive():
                process.terminate()
                process.join(1.0)
        if inbox is not None:
            inbox.close()

    def _spawn_child(self) -> bool:
        """Fork the executor child (post-auth only: no token, no fork)."""
        import multiprocessing

        from repro.service.worker import service_worker_loop

        ctx = multiprocessing.get_context()
        self._inbox = ctx.Queue()
        reader, writer = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=service_worker_loop,
            args=(self._inbox, writer, self._codec),
            daemon=True,
            name=self._name,
        )
        try:
            process.start()
        except Exception:  # noqa: BLE001 — fork/spawn failure: drop the peer
            return False
        writer.close()  # child keeps its copy; EOF then tracks its life
        self._process = process
        self._pipe = reader
        self._pump = threading.Thread(
            target=self._pump_loop, name=f"{self._name}-pump", daemon=True
        )
        self._pump.start()
        return True

    def _read_loop(self) -> None:
        try:
            leftover = server_handshake(self._sock, self._codec, self._token)
        except Exception:  # noqa: BLE001 — hostile pre-auth bytes (bad
            # pickle, torn stream) must close the connection cleanly, not
            # kill this thread with the socket still registered.
            self.stop()
            return
        if not self._spawn_child():
            self.stop()
            return
        if leftover is not None:
            self._ingest(leftover)
        while not self._stopped:
            try:
                frame = read_frame(self._sock, self._codec)
            except Exception:  # noqa: BLE001 — broken stream or undecodable frame
                frame = None
            if frame is None:
                break
            self._ingest(frame)
        self.stop()

    def _ingest(self, frame) -> None:
        if not isinstance(frame, Request):
            return
        if frame.request_id == HEARTBEAT_ID:
            self._send_raw(
                encode_frame(
                    Response(HEARTBEAT_ID, "pong", None, self._process.pid),
                    self._codec,
                )
            )
            return
        try:
            self._inbox.put(encode_frame(frame, self._codec))
        except Exception:  # noqa: BLE001 — child/queue gone: drop the peer
            self.stop()

    def _pump_loop(self) -> None:
        while True:
            try:
                frame = self._pipe.recv_bytes()
            except (EOFError, OSError):
                break  # child exited (or was killed): peer loss for the client
            if not self._send_raw(frame):
                break
        try:
            self._pipe.close()
        except OSError:
            pass
        self.stop()

    def _send_raw(self, frame: bytes) -> bool:
        try:
            with self._write_lock:
                self._sock.sendall(frame)
        except OSError:
            self.stop()
            return False
        return True


class _AgentRegistrar:
    """Keeps an agent registered across registry restarts.

    Mirror of the service's registry redial loop (PR 9): when the
    registry connection dies — restart, partition, crash — a single
    background redial (non-blocking lock = single-flight) reconnects
    with capped exponential backoff and *re-registers*, so the agent
    rejoins pools live instead of silently falling out of the directory.
    The first registration happens inline and fails hard: an unreachable
    registry at startup is a real configuration error.
    """

    def __init__(
        self,
        registry: str,
        address: str,
        kind: str,
        token: str | None,
        stop: "threading.Event",
        heartbeat_interval: float | None = None,
        liveness_timeout: float | None = None,
    ) -> None:
        self._registry = registry
        self._address = address
        self._kind = kind
        self._token = token
        self._stop = stop
        self._kwargs: dict[str, float] = {}
        if heartbeat_interval is not None:
            self._kwargs["heartbeat_interval"] = heartbeat_interval
        if liveness_timeout is not None:
            self._kwargs["liveness_timeout"] = liveness_timeout
        self._redial_lock = threading.Lock()
        self._client = None

    def start(self) -> None:
        self._client = self._dial()

    def _dial(self):
        from repro.cluster import RegistryClient  # lazy: cluster imports transport

        client = RegistryClient.connect(
            self._registry, token=self._token, on_lost=self._on_lost, **self._kwargs
        )
        try:
            client.register(self._address, kind=self._kind)
        except Exception:
            client.close()
            raise
        return client

    def _on_lost(self) -> None:
        if self._stop.is_set():
            return
        threading.Thread(
            target=self._redial_loop, name="agent-registry-redial", daemon=True
        ).start()

    def _redial_loop(self) -> None:
        from repro.retry import REDIAL_POLICY  # lazy: retry imports progression

        if not self._redial_lock.acquire(blocking=False):
            return  # a redial is already in flight
        try:
            old, self._client = self._client, None
            if old is not None:
                old.close()

            def attempt() -> None:
                self._client = self._dial()

            REDIAL_POLICY.run(
                attempt, retry_on=(ServiceError, OSError), stop=self._stop
            )
        except Exception:  # noqa: BLE001 — only exhausted by the stop event
            pass
        finally:
            self._redial_lock.release()

    def leave(self) -> None:
        client = self._client
        if client is not None:
            try:
                client.leave()
            except Exception:  # noqa: BLE001 — registry may already be gone
                pass

    def close(self) -> None:
        client, self._client = self._client, None
        if client is not None:
            client.close()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Host monitor-service workers behind a TCP listener."
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=0, help="bind port (0 picks an ephemeral one)"
    )
    parser.add_argument(
        "--token",
        default=None,
        help="shared auth token gating connections (default: REPRO_AGENT_TOKEN)",
    )
    parser.add_argument(
        "--processes",
        action="store_true",
        help="fork one executor process per connection (lend the whole host)",
    )
    parser.add_argument(
        "--registry",
        default=None,
        metavar="tcp://HOST:PORT",
        help="announce this agent to a cluster registry (join on start, "
        "deregister + drain on SIGTERM)",
    )
    parser.add_argument(
        "--advertise",
        default=None,
        metavar="HOST",
        help="address to announce to the registry (default: --host, or "
        "127.0.0.1 when bound to 0.0.0.0)",
    )
    parser.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="graceful-leave bound: how long SIGTERM waits for services "
        "to migrate sessions off before the agent exits",
    )
    parser.add_argument(
        "--heartbeat-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="heartbeat cadence on this agent's registry connection "
        "(default: transport default, 1 s)",
    )
    parser.add_argument(
        "--heartbeat-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="silence threshold before the registry connection is "
        "declared dead and redialed (default: transport default, 5 s)",
    )
    args = parser.parse_args(argv)
    agent = WorkerAgent(
        args.host, args.port, token=args.token, processes=args.processes
    )
    agent.start()

    # Install the handler before announcing readiness anywhere (ready
    # line, registry join): a spawner may SIGTERM the moment it learns
    # the agent exists, and that must already mean "graceful leave".
    stop = threading.Event()

    def _graceful(_signum, _frame) -> None:
        stop.set()

    signal.signal(signal.SIGTERM, _graceful)

    registrar = None
    if args.registry is not None:
        advertise_host = args.advertise or args.host
        if advertise_host in ("0.0.0.0", "::"):
            advertise_host = "127.0.0.1"
        registrar = _AgentRegistrar(
            args.registry,
            f"tcp://{advertise_host}:{agent.port}",
            "process" if args.processes else "thread",
            args.token,
            stop,
            heartbeat_interval=args.heartbeat_interval,
            liveness_timeout=args.heartbeat_timeout,
        )
        registrar.start()

    mode = "process-pool" if args.processes else "thread"
    auth = "token-auth" if agent.authenticated else "no-auth"
    print(
        f"{READY_PREFIX}{agent.address} (pid {os.getpid()}, {mode}, {auth})",
        flush=True,
    )

    try:
        stop.wait()  # serve until SIGTERM (or KeyboardInterrupt)
    except KeyboardInterrupt:
        pass
    finally:
        # Graceful leave: announce first (services start draining), wait
        # for them to detach, then stop serving.  A second SIGTERM during
        # the drain is harmless (the event is already set).
        if registrar is not None:
            registrar.leave()
        agent.drain(args.drain_timeout)
        if registrar is not None:
            registrar.close()
        agent.close()
    return 0


def spawn_agent(
    host: str = "127.0.0.1",
    port: int = 0,
    token: str | None = None,
    processes: bool = False,
    registry: str | None = None,
    heartbeat_interval: float | None = None,
    heartbeat_timeout: float | None = None,
):
    """Start a worker agent in a fresh OS process; returns ``(popen, host, port)``.

    The helper behind the TCP examples and smoke tests: runs
    ``python -m repro.transport.agent``, waits for the ready line, and
    parses the bound port from it.  The caller owns the process
    (``popen.kill()`` to simulate a host loss, ``terminate()`` for a
    graceful SIGTERM leave).  ``token``/``processes``/``registry`` pass
    through to the agent's flags.
    """
    import subprocess

    src_root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [src_root] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    argv = [
        sys.executable,
        "-c",
        "from repro.transport.agent import main; raise SystemExit(main())",
        # argparse reads sys.argv[1:], which -c leaves intact:
        "--host",
        host,
        "--port",
        str(port),
    ]
    if token is not None:
        argv += ["--token", token]
    if processes:
        argv.append("--processes")
    if registry is not None:
        argv += ["--registry", registry]
    if heartbeat_interval is not None:
        argv += ["--heartbeat-interval", str(heartbeat_interval)]
    if heartbeat_timeout is not None:
        argv += ["--heartbeat-timeout", str(heartbeat_timeout)]
    popen = subprocess.Popen(argv, stdout=subprocess.PIPE, env=env, text=True)
    line = popen.stdout.readline()
    if not line.startswith(READY_PREFIX):
        popen.kill()
        raise ServiceError(f"worker agent failed to start (got {line!r})")
    address = line[len(READY_PREFIX):].split()[0]
    bound_host, bound_port = address.rsplit(":", 1)
    return popen, bound_host, int(bound_port)


if __name__ == "__main__":  # pragma: no cover - process entry point
    raise SystemExit(main())
