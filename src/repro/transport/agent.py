"""The worker agent: a TCP listener hosting service workers.

``python -m repro.transport.agent --port 7701`` (or the
``scripts/run_worker_agent.py`` wrapper) turns any host into a pool
endpoint: a :class:`~repro.service.MonitorService` built with
``endpoints=["tcp://host:7701", ...]`` then ships the same
Request/Response frames to it that local workers get over queues.

Each *accepted connection* is one logical worker: it gets its own
:class:`~repro.service.worker.RequestExecutor` (private session
registry, private drop set) and a pair of threads —

* a **reader** that ingests frames continuously: heartbeats are answered
  inline (so liveness stays fresh during long monitor tasks), ``drop``
  control frames take effect immediately, and everything else queues for
  the executor in FIFO order;
* an **executor** that runs requests one at a time and writes responses
  back under a per-connection write lock.

Requests on one connection therefore execute strictly in send order —
the same ordering guarantee a local worker's FIFO inbox gives — while
cancellation and liveness stay responsive out-of-band.

One agent process is one CPU's worth of workers (executors are threads
under the GIL); for real parallelism run one agent per core and list
each as its own endpoint.

.. warning:: **Trust boundary.**  The wire protocol carries pickle
   payloads and includes operational ops (``crash``, ``sleep``), so
   anyone who can connect to an agent can execute arbitrary code in its
   process — the same trust model as ``multiprocessing`` itself, now
   stretched over a socket.  Bind agents to loopback or a private
   network you control (a service mesh, an SSH tunnel, a VPN); never
   expose the port to untrusted peers.  Authentication/TLS is a
   deliberate non-goal of this layer and belongs in front of it.
"""

from __future__ import annotations

import argparse
import os
import socket
import sys
import threading
from collections import deque
from typing import Callable

from repro.errors import ServiceError
from repro.transport.base import Listener
from repro.transport.frames import (
    DEFAULT_CODEC,
    HEARTBEAT_ID,
    Codec,
    Request,
    Response,
    encode_response_with_fallback,
    read_frame,
)

#: Printed (with the bound address) once the agent accepts connections;
#: spawners wait for this line to learn an ephemeral port.
READY_PREFIX = "worker-agent listening on "


def _default_executor_factory() -> Callable:
    # Lazy import: keeps the transport layer importable on its own (the
    # service worker imports transport frames).
    from repro.service.worker import RequestExecutor

    return RequestExecutor


class WorkerAgent(Listener):
    """Hosts one worker per accepted connection on ``host:port``.

    ``port=0`` binds an ephemeral port (read :attr:`address` after
    :meth:`start`).  ``executor_factory`` builds the per-connection
    request executor; it defaults to the monitor service's.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        codec: Codec = DEFAULT_CODEC,
        executor_factory: Callable | None = None,
    ) -> None:
        self._host = host
        self._port = port
        self._codec = codec
        self._executor_factory = executor_factory or _default_executor_factory()
        self._sock: socket.socket | None = None
        self._closed = False
        self._lock = threading.Lock()
        self._handlers: list[_ConnectionHandler] = []
        self._accept_thread: threading.Thread | None = None

    @property
    def address(self) -> str:
        if self._sock is None:
            raise ServiceError("worker agent is not listening yet")
        return f"{self._host}:{self._port}"

    @property
    def port(self) -> int:
        if self._sock is None:
            raise ServiceError("worker agent is not listening yet")
        return self._port

    def start(self) -> None:
        if self._sock is not None:
            return
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            sock.bind((self._host, self._port))
        except OSError as exc:
            sock.close()
            raise ServiceError(
                f"worker agent could not bind {self._host}:{self._port}: {exc}"
            ) from exc
        sock.listen()
        self._port = sock.getsockname()[1]
        self._sock = sock
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"worker-agent-{self._port}", daemon=True
        )
        self._accept_thread.start()

    def close(self) -> None:
        """Stop accepting, drop live peers (connects are then refused)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            handlers, self._handlers = self._handlers, []
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        for handler in handlers:
            handler.stop()
        if self._accept_thread is not None:
            self._accept_thread.join(1.0)

    def __enter__(self) -> "WorkerAgent":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                client, peer = self._sock.accept()
            except OSError:
                return  # listener closed
            client.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            handler = _ConnectionHandler(
                client, peer, self._codec, self._executor_factory()
            )
            with self._lock:
                if self._closed:
                    handler.stop()
                    return
                self._handlers = [h for h in self._handlers if h.running]
                self._handlers.append(handler)
            handler.start()


class _ConnectionHandler:
    """One accepted peer: reader thread + executor thread + write lock."""

    def __init__(self, sock, peer, codec: Codec, executor) -> None:
        self._sock = sock
        self._peer = peer
        self._codec = codec
        self._executor = executor
        self._write_lock = threading.Lock()
        self._pending: deque[Request] = deque()
        self._wakeup = threading.Condition()
        self._stopped = False
        name = f"agent-peer-{peer[0]}:{peer[1]}"
        self._reader = threading.Thread(
            target=self._read_loop, name=f"{name}-reader", daemon=True
        )
        self._runner = threading.Thread(
            target=self._run_loop, name=f"{name}-executor", daemon=True
        )

    @property
    def running(self) -> bool:
        return not self._stopped

    def start(self) -> None:
        self._reader.start()
        self._runner.start()

    def stop(self) -> None:
        self._stopped = True
        try:
            self._sock.close()
        except OSError:
            pass
        with self._wakeup:
            self._wakeup.notify_all()

    def _read_loop(self) -> None:
        while not self._stopped:
            try:
                frame = read_frame(self._sock, self._codec)
            except Exception:  # noqa: BLE001 — broken stream or undecodable frame
                frame = None
            if frame is None:  # peer gone/unusable: discard this worker's state
                break
            if not isinstance(frame, Request):
                continue
            if frame.request_id == HEARTBEAT_ID:
                # Answered here, not in the executor: a pong must not
                # queue behind a long monitor task or liveness would
                # false-positive on a merely busy worker.
                self._send(
                    Response(HEARTBEAT_ID, "pong", None, self._executor.pid)
                )
                continue
            with self._wakeup:
                if self._executor.ingest(frame):
                    self._pending.append(frame)
                self._wakeup.notify_all()
        self.stop()

    def _run_loop(self) -> None:
        while True:
            with self._wakeup:
                while not self._pending and not self._stopped:
                    self._wakeup.wait()
                if self._stopped and not self._pending:
                    return
                request = self._pending.popleft()
            response = self._executor.execute(request)
            if not self._send(response):
                return

    def _send(self, response: Response) -> bool:
        frame = encode_response_with_fallback(response, self._codec)
        try:
            with self._write_lock:
                self._sock.sendall(frame)
        except OSError:
            self.stop()
            return False
        return True


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Host monitor-service workers behind a TCP listener."
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=0, help="bind port (0 picks an ephemeral one)"
    )
    args = parser.parse_args(argv)
    agent = WorkerAgent(args.host, args.port)
    agent.start()
    print(f"{READY_PREFIX}{agent.address} (pid {os.getpid()})", flush=True)
    try:
        threading.Event().wait()  # serve until killed
    except KeyboardInterrupt:
        pass
    finally:
        agent.close()
    return 0


def spawn_agent(host: str = "127.0.0.1", port: int = 0):
    """Start a worker agent in a fresh OS process; returns ``(popen, host, port)``.

    The helper behind the TCP examples and smoke tests: runs
    ``python -m repro.transport.agent``, waits for the ready line, and
    parses the bound port from it.  The caller owns the process
    (``popen.kill()`` to simulate a host loss, ``terminate()`` to stop).
    """
    import subprocess

    src_root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [src_root] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    popen = subprocess.Popen(
        [
            sys.executable,
            "-c",
            "from repro.transport.agent import main; raise SystemExit(main())",
            # argparse reads sys.argv[1:], which -c leaves intact:
            "--host",
            host,
            "--port",
            str(port),
        ],
        stdout=subprocess.PIPE,
        env=env,
        text=True,
    )
    line = popen.stdout.readline()
    if not line.startswith(READY_PREFIX):
        popen.kill()
        raise ServiceError(f"worker agent failed to start (got {line!r})")
    address = line[len(READY_PREFIX):].split()[0]
    bound_host, bound_port = address.rsplit(":", 1)
    return popen, bound_host, int(bound_port)


if __name__ == "__main__":  # pragma: no cover - process entry point
    raise SystemExit(main())
