"""Pluggable transport layer for the monitor service.

The service's wire protocol — typed
:class:`~repro.transport.frames.Request` /
:class:`~repro.transport.frames.Response` frames with versioned,
length-prefixed serialization behind a codec — and the two backends that
carry it: :class:`~repro.transport.local.LocalTransport` (one
``multiprocessing`` child per endpoint) and
:class:`~repro.transport.tcp.TcpTransport` (a socket to a
:class:`~repro.transport.agent.WorkerAgent`, heartbeat liveness).  A
service pool is a list of transports and may mix backends freely.
"""

from __future__ import annotations

from repro.errors import ServiceError
from repro.transport.agent import ProcessPoolAgent, WorkerAgent, spawn_agent
from repro.transport.auth import TOKEN_ENV_VAR, resolve_token
from repro.transport.base import Connection, Listener, Transport
from repro.transport.frames import (
    CONTROL_ID,
    DEFAULT_CODEC,
    DROP_STANDBY,
    DROPPED_BEFORE_EXECUTION,
    HEARTBEAT_ID,
    KNOWN_OPS,
    PROMOTE_SESSION,
    RESTORE_SESSION,
    SNAPSHOT_SESSION,
    STANDBY_SESSION,
    Codec,
    PickleCodec,
    Request,
    Response,
    decode_frame,
    encode_frame,
)
from repro.transport.faults import (
    ChaosProxy,
    FaultDecision,
    FaultSchedule,
    FaultyConnection,
    FaultyTransport,
)
from repro.transport.local import LocalConnection, LocalTransport
from repro.transport.tcp import TcpConnection, TcpTransport, parse_address

__all__ = [
    "CONTROL_ID",
    "ChaosProxy",
    "Codec",
    "Connection",
    "DEFAULT_CODEC",
    "DROPPED_BEFORE_EXECUTION",
    "DROP_STANDBY",
    "FaultDecision",
    "FaultSchedule",
    "FaultyConnection",
    "FaultyTransport",
    "HEARTBEAT_ID",
    "KNOWN_OPS",
    "Listener",
    "LocalConnection",
    "LocalTransport",
    "PROMOTE_SESSION",
    "PickleCodec",
    "ProcessPoolAgent",
    "RESTORE_SESSION",
    "Request",
    "Response",
    "SNAPSHOT_SESSION",
    "STANDBY_SESSION",
    "TOKEN_ENV_VAR",
    "TcpConnection",
    "TcpTransport",
    "Transport",
    "WorkerAgent",
    "decode_frame",
    "encode_frame",
    "parse_address",
    "resolve_token",
    "resolve_transport",
    "spawn_agent",
]


def resolve_transport(
    spec: "Transport | str",
    token: str | None = None,
    heartbeat_interval: float | None = None,
    liveness_timeout: float | None = None,
) -> Transport:
    """Turn an endpoint spec into a transport.

    Accepts a ready :class:`Transport`, the string ``"local"`` (spawn a
    worker process), or a TCP address (``"tcp://host:port"`` /
    ``"host:port"``).  ``token`` authenticates TCP endpoints (``None``
    resolves ``REPRO_AGENT_TOKEN``); ``heartbeat_interval`` /
    ``liveness_timeout`` override the TCP liveness cadence (``None``
    keeps the backend defaults).  Ready transports and local workers
    ignore all three.
    """
    if isinstance(spec, Transport):
        return spec
    if isinstance(spec, str):
        if spec == "local":
            return LocalTransport()
        host, port = parse_address(spec)
        kwargs: dict[str, float] = {}
        if heartbeat_interval is not None:
            kwargs["heartbeat_interval"] = heartbeat_interval
        if liveness_timeout is not None:
            kwargs["liveness_timeout"] = liveness_timeout
        return TcpTransport(host, port, token=token, **kwargs)
    raise ServiceError(
        f"bad endpoint {spec!r}: expected a Transport, 'local', or 'tcp://host:port'"
    )
