"""Events emitted by smart contracts.

Whenever a contract function succeeds, the chain emits an event that the
monitoring pipeline captures and logs (the paper's Solidity ``event``
interface).  Each record carries the chain-local block timestamp, the
calling party, the amount, and — for the payoff specifications — numeric
deltas tracking value transferred to/from each party.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping


@dataclass(frozen=True)
class ChainEvent:
    """One emitted contract event, as captured by the log collector."""

    chain: str           # short chain name: "apr", "ban", "che", "coin", "tckt"
    name: str            # e.g. "premium_deposited"
    party: str           # the party the event concerns ("alice", "bob", ...)
    local_time: int      # chain-local (skewed) timestamp in milliseconds
    amount: int = 0
    deltas: Mapping[str, float] = field(default_factory=dict)

    def props(self) -> frozenset[str]:
        """Proposition names: both the party-specific and the ``any`` form.

        The paper's specifications mix forms like
        ``apr.asset_redeemed(bob)`` and ``apr.all_asset_settled(any)``.
        """
        return frozenset(
            {
                f"{self.chain}.{self.name}({self.party})",
                f"{self.chain}.{self.name}(any)",
            }
        )

    def __str__(self) -> str:
        return f"{self.chain}.{self.name}({self.party})@{self.local_time}"


def transfer_deltas(sender: str, recipient: str, amount: int) -> dict[str, float]:
    """Payoff-tracking deltas for a value transfer between parties.

    Contract-held escrow accounts are named ``contract:*`` and are not
    tracked (the specs only sum per-party flows).
    """
    deltas: dict[str, float] = {}
    if not sender.startswith("contract:"):
        deltas[f"from.{sender}"] = amount
    if not recipient.startswith("contract:"):
        deltas[f"to.{recipient}"] = amount
    return deltas
