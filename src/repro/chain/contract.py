"""Smart-contract base class (Solidity substitute).

Contracts run on a :class:`~repro.chain.chain.SimulatedChain`.  They use
``self.require(...)`` for revert-style checks, ``self.emit(...)`` to emit
events (buffered until the transaction succeeds, mirroring EVM revert
semantics), ``self.now`` for the chain-local block timestamp, and
``self.transfer(...)`` for token movements that automatically record the
payoff deltas the monitoring specifications consume.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

from repro.chain.events import transfer_deltas
from repro.chain.token import Token
from repro.errors import ChainError, ContractRevert

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.chain.chain import SimulatedChain


class Contract:
    """Base class for on-chain contracts."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._chain: "SimulatedChain | None" = None

    # -- deployment plumbing ------------------------------------------------------

    def _attach(self, chain: "SimulatedChain") -> None:
        if self._chain is not None:
            raise ChainError(f"contract {self.name} already deployed")
        self._chain = chain

    @property
    def chain(self) -> "SimulatedChain":
        if self._chain is None:
            raise ChainError(f"contract {self.name} is not deployed")
        return self._chain

    @property
    def address(self) -> str:
        """The contract's ledger account."""
        return f"contract:{self.name}"

    # -- EVM-style helpers -----------------------------------------------------------

    @property
    def now(self) -> int:
        """Chain-local block timestamp of the executing transaction (ms)."""
        return self.chain.current_time

    def require(self, condition: bool, reason: str = "") -> None:
        """Solidity ``require``: revert the transaction when false."""
        if not condition:
            raise ContractRevert(reason)

    def emit(
        self,
        name: str,
        party: str,
        amount: int = 0,
        deltas: Mapping[str, float] | None = None,
    ) -> None:
        """Emit an event (recorded only if the transaction succeeds)."""
        self.chain.buffer_event(name, party, amount, deltas or {})

    def transfer(self, token: Token, sender: str, recipient: str, amount: int) -> dict[str, float]:
        """Move tokens and return the payoff deltas of the movement."""
        token.transfer(sender, recipient, amount)
        return transfer_deltas(sender, recipient, amount)
