"""A network of blockchains plus a global transaction scheduler.

Parties act at (hidden) global times; each chain stamps the resulting
events with its own skewed clock.  This mirrors the paper's setup of
mimicking several chains whose clocks are synchronized only up to
``epsilon``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.chain.chain import SimulatedChain
from repro.distributed.clocks import ClockModel, FixedSkewClock, PerfectClock
from repro.errors import ChainError


@dataclass(order=True)
class _ScheduledCall:
    global_time: int
    order: int
    chain: SimulatedChain = field(compare=False)
    call: Callable[[], None] = field(compare=False)
    description: str = field(compare=False, default="")


class ChainNetwork:
    """Several chains with bounded-skew clocks and a call scheduler."""

    def __init__(self, epsilon_ms: int = 1) -> None:
        if epsilon_ms < 1:
            raise ChainError(f"epsilon must be >= 1 ms, got {epsilon_ms}")
        self.epsilon_ms = epsilon_ms
        self._chains: dict[str, SimulatedChain] = {}
        self._queue: list[_ScheduledCall] = []
        self._order = 0

    # -- chains -----------------------------------------------------------------

    def add_chain(self, name: str, skew_ms: int = 0) -> SimulatedChain:
        """Create a chain whose clock is offset ``skew_ms`` from global.

        ``|skew_ms|`` must stay below the network's epsilon.
        """
        if name in self._chains:
            raise ChainError(f"chain {name!r} already exists")
        if abs(skew_ms) >= self.epsilon_ms:
            raise ChainError(
                f"chain skew {skew_ms} ms violates the network bound "
                f"epsilon={self.epsilon_ms} ms"
            )
        clock: ClockModel
        if skew_ms == 0:
            clock = PerfectClock()
        else:
            clock = FixedSkewClock(skew_ms, self.epsilon_ms)
        chain = SimulatedChain(name, clock)
        self._chains[name] = chain
        return chain

    def chain(self, name: str) -> SimulatedChain:
        try:
            return self._chains[name]
        except KeyError:
            raise ChainError(f"unknown chain {name!r}") from None

    @property
    def chains(self) -> list[SimulatedChain]:
        return list(self._chains.values())

    # -- scheduling --------------------------------------------------------------

    def schedule(
        self,
        global_time_ms: int,
        chain: SimulatedChain | str,
        call: Callable[[], None],
        description: str = "",
    ) -> None:
        """Queue a transaction for execution at a global time."""
        if isinstance(chain, str):
            chain = self.chain(chain)
        self._queue.append(
            _ScheduledCall(global_time_ms, self._order, chain, call, description)
        )
        self._order += 1

    def run(self) -> list[tuple[str, bool]]:
        """Execute all queued calls in global-time order.

        Returns ``(description, succeeded)`` per call, in execution order.
        """
        self._queue.sort()
        results: list[tuple[str, bool]] = []
        for scheduled in self._queue:
            ok = scheduled.chain.execute(scheduled.global_time, scheduled.call)
            results.append((scheduled.description, ok))
        self._queue = []
        return results
