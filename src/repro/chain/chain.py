"""A simulated blockchain (Ganache substitute).

A chain owns a local clock (bounded-skew view of the hidden global
clock), a set of deployed contracts, token ledgers, and an event log.
Transactions execute atomically: token state is snapshotted before each
call and rolled back on :class:`~repro.errors.ContractRevert`, and events
are buffered and only committed when the call succeeds — mirroring EVM
semantics.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.chain.contract import Contract
from repro.chain.events import ChainEvent
from repro.chain.token import Token
from repro.distributed.clocks import ClockModel, PerfectClock
from repro.errors import ChainError, ContractRevert


class SimulatedChain:
    """One blockchain: clock, contracts, tokens, event log."""

    def __init__(self, name: str, clock: ClockModel | None = None) -> None:
        if not name:
            raise ChainError("chain name must be non-empty")
        self.name = name
        self._clock = clock if clock is not None else PerfectClock()
        self._contracts: dict[str, Contract] = {}
        self._tokens: dict[str, Token] = {}
        self.log: list[ChainEvent] = []
        self.failed: list[tuple[int, str]] = []  # (local_time, revert reason)
        self._current_time: int | None = None
        self._pending: list[ChainEvent] | None = None

    # -- deployment --------------------------------------------------------------

    def deploy(self, contract: Contract) -> Contract:
        if contract.name in self._contracts:
            raise ChainError(f"contract {contract.name!r} already deployed on {self.name}")
        contract._attach(self)
        self._contracts[contract.name] = contract
        return contract

    def register_token(self, token: Token) -> Token:
        if token.symbol in self._tokens:
            raise ChainError(f"token {token.symbol!r} already registered on {self.name}")
        self._tokens[token.symbol] = token
        return token

    def token(self, symbol: str) -> Token:
        try:
            return self._tokens[symbol]
        except KeyError:
            raise ChainError(f"unknown token {symbol!r} on chain {self.name}") from None

    # -- transaction execution ------------------------------------------------------

    @property
    def current_time(self) -> int:
        """Block timestamp of the executing transaction (chain-local ms)."""
        if self._current_time is None:
            raise ChainError("no transaction executing; current_time is undefined")
        return self._current_time

    def buffer_event(
        self,
        name: str,
        party: str,
        amount: int,
        deltas: Mapping[str, float],
    ) -> None:
        """Called by contracts through :meth:`Contract.emit`."""
        if self._pending is None:
            raise ChainError("events can only be emitted inside a transaction")
        self._pending.append(
            ChainEvent(
                chain=self.name,
                name=name,
                party=party,
                local_time=self.current_time,
                amount=amount,
                deltas=dict(deltas),
            )
        )

    def record_marker(self, global_time_ms: int, name: str, party: str = "any") -> None:
        """Append a synthetic, contract-less event to the log.

        Used for protocol anchors such as the ``start`` marker at the
        agreed ``startTime`` — specification windows are measured from the
        first observation, so every chain logs the start.
        """
        self.log.append(
            ChainEvent(
                chain=self.name,
                name=name,
                party=party,
                local_time=self._clock.read(global_time_ms),
            )
        )

    def execute(self, global_time_ms: int, call: Callable[[], None]) -> bool:
        """Run one transaction at the given (hidden) global time.

        Returns True when the call succeeded; on revert, token state is
        rolled back, no events are committed, and the failure is recorded
        in :attr:`failed`.
        """
        if self._pending is not None:
            raise ChainError("nested transactions are not supported")
        local = self._clock.read(global_time_ms)
        snapshots = {
            symbol: dict(token._balances) for symbol, token in self._tokens.items()
        }
        self._current_time = local
        self._pending = []
        try:
            call()
        except ContractRevert as revert:
            for symbol, balances in snapshots.items():
                self._tokens[symbol]._balances = balances
            self.failed.append((local, revert.reason))
            return False
        else:
            self.log.extend(self._pending)
            return True
        finally:
            self._pending = None
            self._current_time = None
