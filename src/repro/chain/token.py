"""An ERC-20-style token ledger.

The cross-chain protocols exchange "100 ERC20 tokens" plus small premium
amounts; this ledger provides exactly the operations the contracts need —
mint, transfer, balance queries — with revert-on-insufficient-funds
semantics.
"""

from __future__ import annotations

from repro.errors import ChainError, ContractRevert


class Token:
    """A fungible token with integer balances."""

    def __init__(self, symbol: str) -> None:
        if not symbol:
            raise ChainError("token symbol must be non-empty")
        self.symbol = symbol
        self._balances: dict[str, int] = {}

    def mint(self, owner: str, amount: int) -> None:
        """Create ``amount`` tokens in ``owner``'s balance."""
        if amount < 0:
            raise ChainError(f"cannot mint a negative amount ({amount})")
        self._balances[owner] = self._balances.get(owner, 0) + amount

    def balance_of(self, owner: str) -> int:
        return self._balances.get(owner, 0)

    def transfer(self, sender: str, recipient: str, amount: int) -> None:
        """Move tokens; reverts when the sender's balance is insufficient."""
        if amount < 0:
            raise ContractRevert(f"negative transfer amount {amount}")
        balance = self._balances.get(sender, 0)
        if balance < amount:
            raise ContractRevert(
                f"insufficient {self.symbol} balance: {sender} has {balance}, needs {amount}"
            )
        self._balances[sender] = balance - amount
        self._balances[recipient] = self._balances.get(recipient, 0) + amount

    def total_supply(self) -> int:
        return sum(self._balances.values())

    def __repr__(self) -> str:
        return f"Token({self.symbol}, holders={len(self._balances)})"
