"""From chain event logs to distributed computations.

Each blockchain is one process of the distributed computation (its block
timestamps are the process-local clock); the captured contract events are
the process's events.  This is the glue between the blockchain substrate
and the monitor.
"""

from __future__ import annotations

from typing import Iterable

from repro.chain.chain import SimulatedChain
from repro.chain.events import ChainEvent
from repro.distributed.computation import DistributedComputation


def computation_from_events(
    events: Iterable[ChainEvent],
    epsilon_ms: int,
) -> DistributedComputation:
    """Build a computation from raw chain events (one process per chain).

    Same-chain events sharing a block timestamp (several emissions from
    one transaction) keep their emission order — sorting is stable on
    ``(local_time, chain, original position)``.
    """
    computation = DistributedComputation(epsilon_ms)
    indexed = list(enumerate(events))
    indexed.sort(key=lambda pair: (pair[1].local_time, pair[1].chain, pair[0]))
    for _, event in indexed:
        computation.add_event(event.chain, event.local_time, event.props(), event.deltas)
    return computation


def computation_from_chains(
    chains: Iterable[SimulatedChain],
    epsilon_ms: int,
) -> DistributedComputation:
    """Collect every chain's log into one computation."""
    events: list[ChainEvent] = []
    for chain in chains:
        events.extend(chain.log)
    return computation_from_events(events, epsilon_ms)
