"""Simulated blockchain substrate: tokens, contracts, chains, logs."""

from repro.chain.chain import SimulatedChain
from repro.chain.contract import Contract
from repro.chain.events import ChainEvent, transfer_deltas
from repro.chain.log import computation_from_chains, computation_from_events
from repro.chain.network import ChainNetwork
from repro.chain.token import Token

__all__ = [
    "ChainEvent",
    "ChainNetwork",
    "Contract",
    "SimulatedChain",
    "Token",
    "computation_from_chains",
    "computation_from_events",
    "transfer_deltas",
]
