"""MTL policies for the hedged two-party swap (paper Section VI-B.2).

All formulas are parameterised on the protocol deadline ``delta`` (ms).
Step ``k``'s deadline is ``k * delta``.

One adaptation, documented in DESIGN.md: the paper states the safety and
hedged payoff conditions as bare sum comparisons; since the sums are only
final after settlement, we guard them with the settlement propositions —
``G(settled -> payoff)`` — which is the checkable finite-trace reading.
"""

from __future__ import annotations

from repro.mtl.ast import Formula, always, atom, eventually, implies, land, lnot, until
from repro.mtl.interval import Interval
from repro.specs.payoff import compensated_payoff, non_negative_payoff

#: Bob's premium on the apricot chain (the compensation the hedge pays).
APRICOT_PREMIUM = 1
#: Alice's premium on the banana chain.
BANANA_PREMIUM = 2


def _before(k: int, delta: int) -> Interval:
    """The window ``[0, k * delta)``."""
    return Interval.bounded(0, k * delta)


def liveness(delta: int) -> Formula:
    """phi_liveness: every step happens before its deadline and all assets
    settle afterwards."""
    return land(
        eventually(atom("ban.premium_deposited(alice)"), _before(1, delta)),
        eventually(atom("apr.premium_deposited(bob)"), _before(2, delta)),
        eventually(atom("apr.asset_escrowed(alice)"), _before(3, delta)),
        eventually(atom("ban.asset_escrowed(bob)"), _before(4, delta)),
        eventually(atom("ban.asset_redeemed(alice)"), _before(5, delta)),
        eventually(atom("apr.asset_redeemed(bob)"), _before(6, delta)),
        eventually(atom("ban.premium_refunded(alice)"), _before(5, delta)),
        eventually(atom("apr.premium_refunded(bob)"), _before(6, delta)),
        always(atom("apr.all_asset_settled(any)"), Interval.unbounded(6 * delta)),
        always(atom("ban.all_asset_settled(any)"), Interval.unbounded(5 * delta)),
    )


def alice_conforming(delta: int) -> Formula:
    """phi_alice_conform: Alice starts the protocol and matches Bob's
    progress, never revealing the secret before redeeming herself."""
    return land(
        eventually(atom("ban.premium_deposited(alice)"), _before(1, delta)),
        implies(
            eventually(atom("apr.premium_deposited(bob)"), _before(2, delta)),
            eventually(atom("apr.asset_escrowed(alice)"), _before(3, delta)),
        ),
        implies(
            eventually(atom("ban.asset_escrowed(bob)"), _before(4, delta)),
            eventually(atom("ban.asset_redeemed(alice)"), _before(5, delta)),
        ),
        until(
            lnot(atom("apr.asset_redeemed(bob)")),
            atom("ban.asset_redeemed(alice)"),
        ),
    )


def bob_conforming(delta: int) -> Formula:
    """The mirror-image conformance condition for Bob."""
    return land(
        eventually(atom("apr.premium_deposited(bob)"), _before(2, delta)),
        implies(
            eventually(atom("apr.asset_escrowed(alice)"), _before(3, delta)),
            eventually(atom("ban.asset_escrowed(bob)"), _before(4, delta)),
        ),
        implies(
            eventually(atom("ban.asset_redeemed(alice)"), _before(5, delta)),
            eventually(atom("apr.asset_redeemed(bob)"), _before(6, delta)),
        ),
    )


def _both_settled() -> Formula:
    return land(
        atom("apr.all_asset_settled(any)"),
        atom("ban.all_asset_settled(any)"),
    )


def alice_safety(delta: int) -> Formula:
    """phi_alice_safety: a conforming Alice never ends with negative payoff."""
    return implies(
        alice_conforming(delta),
        always(implies(_both_settled(), non_negative_payoff("alice"))),
    )


def bob_safety(delta: int) -> Formula:
    """The mirror-image safety condition for Bob."""
    return implies(
        bob_conforming(delta),
        always(implies(_both_settled(), non_negative_payoff("bob"))),
    )


def alice_hedged(delta: int) -> Formula:
    """phi_alice_hedged: a conforming Alice whose escrowed asset was
    refunded is compensated with the counterparty premium."""
    return implies(
        land(
            alice_conforming(delta),
            eventually(atom("apr.asset_escrowed(alice)")),
            eventually(atom("apr.asset_refunded(any)")),
        ),
        always(
            implies(
                _both_settled(),
                compensated_payoff("alice", APRICOT_PREMIUM),
            )
        ),
    )


#: All two-party policies keyed by their paper names.
def all_policies(delta: int) -> dict[str, Formula]:
    return {
        "liveness": liveness(delta),
        "alice_conforming": alice_conforming(delta),
        "bob_conforming": bob_conforming(delta),
        "alice_safety": alice_safety(delta),
        "bob_safety": bob_safety(delta),
        "alice_hedged": alice_hedged(delta),
    }
