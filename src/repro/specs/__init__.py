"""The paper's MTL specifications: UPPAAL phi1-phi6 and protocol policies."""

from repro.specs import auction_specs, swap2_specs, swap3_specs, uppaal_specs
from repro.specs.payoff import compensated_payoff, non_negative_payoff
from repro.specs.uppaal_specs import ALL_SPECS, phi1, phi2, phi3, phi4, phi5, phi6

__all__ = [
    "ALL_SPECS",
    "auction_specs",
    "compensated_payoff",
    "non_negative_payoff",
    "phi1",
    "phi2",
    "phi3",
    "phi4",
    "phi5",
    "phi6",
    "swap2_specs",
    "swap3_specs",
    "uppaal_specs",
]
