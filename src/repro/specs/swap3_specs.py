"""MTL policies for the hedged three-party swap (paper Appendix IX-B.1)."""

from __future__ import annotations

from repro.mtl.ast import Formula, always, atom, eventually, implies, land, lnot, until
from repro.mtl.interval import Interval
from repro.specs.payoff import compensated_payoff, non_negative_payoff

#: Redemption premiums per chain (the hedge compensation amounts).
REDEMPTION_PREMIUMS = {"che": 3, "ban": 2, "apr": 1}


def _before(k: int, delta: int) -> Interval:
    return Interval.bounded(0, k * delta)


def liveness(delta: int) -> Formula:
    """phi_liveness: the 12 steps in time, then redemptions and refunds."""
    timed = [
        eventually(atom("apr.deposit_escrow_pr(alice)"), _before(1, delta)),
        eventually(atom("ban.deposit_escrow_pr(bob)"), _before(2, delta)),
        eventually(atom("che.deposit_escrow_pr(carol)"), _before(3, delta)),
        eventually(atom("che.deposit_redemption_pr(alice)"), _before(4, delta)),
        eventually(atom("ban.deposit_redemption_pr(carol)"), _before(5, delta)),
        eventually(atom("apr.deposit_redemption_pr(bob)"), _before(6, delta)),
        eventually(atom("apr.asset_escrowed(alice)"), _before(7, delta)),
        eventually(atom("ban.asset_escrowed(bob)"), _before(8, delta)),
        eventually(atom("che.asset_escrowed(carol)"), _before(9, delta)),
        eventually(atom("che.hashlock_unlocked(alice)"), _before(10, delta)),
        eventually(atom("ban.hashlock_unlocked(carol)"), _before(11, delta)),
        eventually(atom("apr.hashlock_unlocked(bob)"), _before(12, delta)),
    ]
    untimed = [
        eventually(atom("che.asset_redeemed(alice)")),
        eventually(atom("apr.asset_redeemed(bob)")),
        eventually(atom("ban.asset_redeemed(carol)")),
        eventually(atom("apr.escrow_premium_refunded(alice)")),
        eventually(atom("ban.escrow_premium_refunded(bob)")),
        eventually(atom("che.escrow_premium_refunded(carol)")),
        eventually(atom("che.redemption_premium_refunded(alice)")),
        eventually(atom("apr.redemption_premium_refunded(bob)")),
        eventually(atom("ban.redemption_premium_refunded(carol)")),
    ]
    return land(*timed, *untimed)


def alice_conforming(delta: int) -> Formula:
    """phi_alice_conf (Appendix IX-B.1.b): Alice's step-for-step duties."""
    return land(
        eventually(atom("apr.deposit_escrow_pr(alice)"), _before(1, delta)),
        implies(
            eventually(atom("che.deposit_escrow_pr(carol)"), _before(3, delta)),
            eventually(atom("che.deposit_redemption_pr(alice)"), _before(4, delta)),
        ),
        until(
            lnot(atom("che.deposit_redemption_pr(alice)")),
            atom("che.deposit_escrow_pr(carol)"),
        ),
        implies(
            eventually(atom("apr.deposit_redemption_pr(bob)"), _before(6, delta)),
            eventually(atom("apr.asset_escrowed(alice)"), _before(7, delta)),
        ),
        until(
            lnot(atom("apr.asset_escrowed(alice)")),
            atom("apr.deposit_redemption_pr(bob)"),
        ),
        implies(
            eventually(atom("che.asset_escrowed(carol)"), _before(9, delta)),
            eventually(atom("che.hashlock_unlocked(alice)"), _before(10, delta)),
        ),
        until(
            lnot(atom("che.hashlock_unlocked(alice)")),
            atom("che.asset_escrowed(carol)"),
        ),
        until(
            lnot(atom("ban.hashlock_unlocked(carol)")),
            atom("che.hashlock_unlocked(alice)"),
        ),
        until(
            lnot(atom("apr.hashlock_unlocked(bob)")),
            atom("che.hashlock_unlocked(alice)"),
        ),
    )


def _all_settled() -> Formula:
    return land(
        atom("apr.all_asset_settled(any)"),
        atom("ban.all_asset_settled(any)"),
        atom("che.all_asset_settled(any)"),
    )


def alice_safety(delta: int) -> Formula:
    """phi_alice_safety: conforming Alice has non-negative final payoff."""
    return implies(
        alice_conforming(delta),
        always(implies(_all_settled(), non_negative_payoff("alice"))),
    )


def alice_hedged(delta: int) -> Formula:
    """phi_alice_hedged: conforming Alice whose apricot escrow is refunded
    is compensated by the apricot redemption premium."""
    return implies(
        land(
            alice_conforming(delta),
            eventually(atom("apr.asset_escrowed(alice)")),
            eventually(atom("apr.asset_refunded(any)")),
        ),
        always(
            implies(
                _all_settled(),
                compensated_payoff("alice", REDEMPTION_PREMIUMS["apr"]),
            )
        ),
    )


def all_policies(delta: int) -> dict[str, Formula]:
    return {
        "liveness": liveness(delta),
        "alice_conforming": alice_conforming(delta),
        "alice_safety": alice_safety(delta),
        "alice_hedged": alice_hedged(delta),
    }
