"""MTL policies for the auction protocol (paper Appendix IX-B.2).

Bob is the expected winner (he bids 100 against Carol's 90).  The
``declaration``/``challenge`` atoms carry two-part arguments matching the
paper's ``coin.declaration(alice, sb)`` notation.
"""

from __future__ import annotations

from repro.mtl.ast import Formula, always, atom, eventually, implies, land, lnot, lor
from repro.mtl.interval import Interval


def _before(k: int, delta: int) -> Interval:
    return Interval.bounded(0, k * delta)


def _after(k: int, delta: int) -> Interval:
    """The paper's ``(k*delta, inf)`` — open start, so shift by one tick."""
    return Interval.unbounded(k * delta + 1)


def liveness(delta: int) -> Formula:
    """phi_liveness: bids, honest declaration of Bob, clean settlement."""
    return land(
        eventually(atom("coin.bid(bob)"), _before(1, delta)),
        eventually(atom("coin.declaration(alice,sb)"), _before(2, delta)),
        eventually(atom("tckt.declaration(alice,sb)"), _before(2, delta)),
        eventually(atom("coin.redeem_bid(any)"), _after(4, delta)),
        eventually(atom("coin.refund_premium(any)"), _after(4, delta)),
        implies(
            eventually(atom("coin.bid(carol)")),
            eventually(atom("coin.refund_bid(any)")),
        ),
        eventually(atom("tckt.redeem_ticket(any)")),
        lnot(eventually(atom("coin.challenge(any)"))),
        lnot(eventually(atom("tckt.challenge(any)"))),
    )


def _seen(chain: str, kind_party_tag: str) -> Formula:
    """``F chain.<event>`` shorthand for declaration/challenge sightings."""
    return eventually(atom(f"{chain}.{kind_party_tag}"))


def bob_conforming(delta: int) -> Formula:
    """phi_bob_conform: Bob bids in time and forwards any secret that
    appears on only one chain (the anti-cheat duty)."""
    clauses: list[Formula] = [eventually(atom("coin.bid(bob)"), _before(1, delta))]
    for tag in ("sb", "sc"):
        coin_release = lor(
            _seen("coin", f"declaration(alice,{tag})"),
            _seen("coin", f"challenge(carol,{tag})"),
        )
        tckt_release = lor(
            _seen("tckt", f"declaration(alice,{tag})"),
            _seen("tckt", f"challenge(carol,{tag})"),
            _seen("tckt", f"challenge(bob,{tag})"),
        )
        clauses.append(implies(coin_release, tckt_release))
        coin_side = lor(
            _seen("coin", f"declaration(alice,{tag})"),
            _seen("coin", f"challenge(carol,{tag})"),
            _seen("coin", f"challenge(bob,{tag})"),
        )
        tckt_side = lor(
            _seen("tckt", f"declaration(alice,{tag})"),
            _seen("tckt", f"challenge(carol,{tag})"),
        )
        clauses.append(implies(tckt_side, coin_side))
    return land(*clauses)


def bob_safety(delta: int) -> Formula:
    """phi_bob_safety: a conforming Bob ends with his bid refunded (plus
    premium compensation) or the ticket."""
    good_outcome = lor(
        land(
            eventually(atom("coin.refund_bid(any)")),
            eventually(atom("coin.redeem_premium(any)")),
        ),
        eventually(atom("tckt.redeem_ticket(any)")),
    )
    return implies(bob_conforming(delta), good_outcome)


def bob_hedged(delta: int) -> Formula:
    """phi_bob_hedged: if the ticket escapes Bob despite conformance, his
    bid is refunded and he is compensated."""
    return implies(
        land(
            bob_conforming(delta),
            lor(
                eventually(atom("tckt.refund_ticket(alice)")),
                eventually(atom("tckt.redeem_ticket(carol)")),
            ),
        ),
        land(
            eventually(atom("coin.refund_bid(any)")),
            eventually(atom("coin.redeem_premium(any)")),
        ),
    )


def all_policies(delta: int) -> dict[str, Formula]:
    return {
        "liveness": liveness(delta),
        "bob_conforming": bob_conforming(delta),
        "bob_safety": bob_safety(delta),
        "bob_hedged": bob_hedged(delta),
    }
