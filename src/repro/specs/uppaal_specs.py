"""The six MTL specifications of the synthetic evaluation (Section VI-A).

Formulas are parameterised on the process count and, for the time-bounded
ones, on a window width in the computation's time unit (milliseconds):

* phi1 — no train crosses until train 1 crosses;
* phi2 — an approaching train implies the gate stays occupied until that
  train crosses;
* phi3 — mutual exclusion: at most one process in the critical section
  (encoded propositionally: no two ``cs`` propositions together);
* phi4 — every request is followed by the critical section within the
  window;
* phi5 — within the window, everyone knows everyone else's secret;
* phi6 — everyone has fresh secrets to share infinitely often (in the
  bounded reading: a fresh secret in every window).
"""

from __future__ import annotations

from repro.errors import FormulaError
from repro.mtl.ast import Formula, always, atom, eventually, implies, land, lnot, until
from repro.mtl.interval import Interval


def _window(width_ms: int) -> Interval:
    if width_ms <= 0:
        raise FormulaError(f"window width must be positive, got {width_ms}")
    return Interval.bounded(0, width_ms)


def phi1(processes: int) -> Formula:
    """``(AND_i !train_i.cross) U train_1.cross``."""
    no_cross = land(*(lnot(atom(f"train{i}.cross")) for i in range(1, processes + 1)))
    return until(no_cross, atom("train1.cross"))


def phi2(processes: int) -> Formula:
    """``AND_i G(train_i.appr -> (gate.occ U train_i.cross))``."""
    parts = []
    for i in range(1, processes + 1):
        appr = atom(f"train{i}.appr")
        occupied_until_cross = until(atom("gate.occ"), atom(f"train{i}.cross"))
        parts.append(always(implies(appr, occupied_until_cross)))
    return land(*parts)


def phi3(processes: int) -> Formula:
    """``G(sum_i p_i.cs <= 1)`` encoded as pairwise exclusion."""
    pairs = []
    for i in range(1, processes + 1):
        for j in range(i + 1, processes + 1):
            pairs.append(lnot(land(atom(f"p{i}.cs"), atom(f"p{j}.cs"))))
    if not pairs:  # one process is trivially mutually exclusive
        return always(lnot(land(atom("p1.cs"), lnot(atom("p1.cs")))))
    return always(land(*pairs))


def phi4(processes: int, window_ms: int = 1000) -> Formula:
    """``G(AND_i (p_i.req -> F_[0,w) p_i.cs))``."""
    parts = [
        implies(atom(f"p{i}.req"), eventually(atom(f"p{i}.cs"), _window(window_ms)))
        for i in range(1, processes + 1)
    ]
    return always(land(*parts))


def phi5(processes: int, window_ms: int = 2000) -> Formula:
    """``F_[0,w)(AND_{i != j} person_i.secret_j)``."""
    parts = []
    for i in range(1, processes + 1):
        for j in range(1, processes + 1):
            if i != j:
                parts.append(atom(f"person{i}.secret{j}"))
    if not parts:
        parts = [atom("person1.secret1")]
    return eventually(land(*parts), _window(window_ms))


def phi6(processes: int, window_ms: int = 1000) -> Formula:
    """``AND_i G(F_[0,w) person_i.secrets)`` — the nested-operator spec."""
    parts = [
        always(eventually(atom(f"person{i}.secrets"), _window(window_ms)))
        for i in range(1, processes + 1)
    ]
    return land(*parts)


#: Formula builders keyed the way the paper labels them (Fig 5a's legend),
#: together with the model that generates matching traces.
ALL_SPECS = {
    "phi1": (phi1, "train_gate"),
    "phi2": (phi2, "train_gate"),
    "phi3": (phi3, "fischer"),
    "phi4": (phi4, "fischer"),
    "phi5": (phi5, "gossip"),
    "phi6": (phi6, "gossip"),
}
