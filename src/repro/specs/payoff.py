"""Payoff predicates over cumulative transfer sums (Section V-A's mu
extension to non-boolean variables).

The blockchain logs attach numeric deltas ``to.<party>`` / ``from.<party>``
to every value transfer; traces accumulate them, so at any position the
valuation holds the running sums the paper writes as ``sum of amount,
TransTo = alice``.  The predicates below compare those sums.
"""

from __future__ import annotations

from typing import Mapping

from repro.mtl.ast import PredicateAtom


def received(valuation: Mapping[str, float], party: str) -> float:
    """Total value transferred *to* the party so far."""
    return valuation.get(f"to.{party}", 0)


def sent(valuation: Mapping[str, float], party: str) -> float:
    """Total value transferred *from* the party so far."""
    return valuation.get(f"from.{party}", 0)


def non_negative_payoff(party: str) -> PredicateAtom:
    """``sum TransTo(party) >= sum TransFrom(party)`` — the safety payoff."""

    def predicate(valuation: Mapping[str, float]) -> bool:
        return received(valuation, party) >= sent(valuation, party)

    return PredicateAtom(f"payoff_nonneg({party})", predicate)


def compensated_payoff(party: str, premium: int) -> PredicateAtom:
    """``TransTo(party) >= TransFrom(party) + premium`` — the hedged payoff."""

    def predicate(valuation: Mapping[str, float]) -> bool:
        return received(valuation, party) >= sent(valuation, party) + premium

    return PredicateAtom(f"payoff_hedged({party},{premium})", predicate)
