"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class FormulaError(ReproError):
    """An MTL formula is malformed (bad interval, bad operator arity...)."""


class ParseError(FormulaError):
    """The MTL text parser could not parse its input."""

    def __init__(self, message: str, position: int | None = None) -> None:
        self.position = position
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)


class TraceError(ReproError):
    """A timed trace is malformed (non-monotone timestamps, empty trace...)."""


class ComputationError(ReproError):
    """A distributed computation is malformed (cycles in happened-before,
    non-monotone per-process clocks, unknown processes...)."""


class SolverError(ReproError):
    """The constraint solver was used incorrectly (unknown variable, empty
    domain at model time...)."""


class EncodingError(ReproError):
    """The cut-sequence/formula encoding could not be constructed."""


class MonitorError(ReproError):
    """The monitor was driven incorrectly (segments out of order...)."""


class PreemptedError(MonitorError):
    """A running computation was preempted by its execution budget.

    Raised cooperatively at a :class:`~repro.progression.budget.Budget`
    checkpoint when the budget was cancelled (a client ``drop`` on the
    running request, or an explicit :meth:`Budget.cancel`) or its
    wall-clock deadline passed.  Distinct from *truncation*: a truncated
    segment stops gracefully at its trace budget and keeps its partial
    counts; a preempted computation unwinds without committing state, so
    the same work can be retried after a restore and yield identical
    verdicts.  Deliberately *not* a :class:`ServiceError` — preemption is
    an engine outcome, not a transport failure, so durable sessions do
    not trigger recovery on it."""


class ServiceError(MonitorError):
    """The monitor service failed at the transport layer (worker died,
    service already closed, request timed out...).  Worker-side monitoring
    errors re-raise as their original :class:`ReproError` subclass; this
    class covers failures of the service plumbing itself."""


class CancelledError(ServiceError):
    """The request's future was cancelled client-side before it resolved
    (see :meth:`~repro.service.futures.MonitorFuture.cancel`)."""


class ChainError(ReproError):
    """A simulated blockchain operation failed structurally (unknown
    contract, malformed transaction...)."""


class ContractRevert(ChainError):
    """A contract ``require`` failed: the transaction reverts.

    Mirrors Solidity's ``revert``/``require`` semantics: state changes made
    by the failing call are rolled back and no events are emitted.
    """

    def __init__(self, reason: str = "") -> None:
        self.reason = reason
        super().__init__(reason or "transaction reverted")


class ProtocolError(ReproError):
    """A cross-chain protocol scenario is malformed."""


class AutomatonError(ReproError):
    """A timed automaton or network definition is malformed."""
