"""Distributed runtime verification of MTL for cross-chain protocols.

Reproduction of Ganguly et al., "Distributed Runtime Verification of
Metric Temporal Properties for Cross-Chain Protocols" (ICDCS 2022).

Public API quick tour::

    from repro import mtl, monitor
    from repro.distributed import DistributedComputation

    spec = mtl.parse("a U[0,6) b")
    comp = DistributedComputation.from_event_lists(
        2, {"P1": [(1, "a"), (4, ())], "P2": [(2, "a"), (5, "b")]})
    result = monitor.monitor(spec, comp)
    print(result.verdicts)   # frozenset({True, False}) — Fig 3's example
"""

from repro import (
    bench,
    chain,
    distributed,
    encoding,
    io,
    monitor,
    mtl,
    parallel,
    progression,
    protocols,
    service,
    solver,
    specs,
    timed_automata,
)
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "__version__",
    "bench",
    "chain",
    "distributed",
    "encoding",
    "io",
    "monitor",
    "mtl",
    "parallel",
    "progression",
    "protocols",
    "service",
    "solver",
    "specs",
    "timed_automata",
]
