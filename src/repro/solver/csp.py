"""Problem container for the finite-domain constraint solver.

This module plays the role the paper assigns to the SMT solver's input
format (Section V-A's "SMT entities"): variables with finite integer
domains and declarative constraints over them.  See DESIGN.md for why a
finite-domain CP solver is an exact substitute on this problem class.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.errors import SolverError
from repro.solver.domain import Domain

Assignment = Mapping[str, int]


class Constraint:
    """Base class for constraints.

    A constraint declares the variables it mentions and can:

    * decide satisfaction once all its variables are assigned
      (:meth:`is_satisfied`);
    * optionally prune a partial assignment early (:meth:`is_consistent`),
      defaulting to "cannot tell yet" unless fully assigned.
    """

    def __init__(self, variables: Iterable[str]) -> None:
        self.variables: tuple[str, ...] = tuple(variables)
        if not self.variables:
            raise SolverError("a constraint must mention at least one variable")

    def is_satisfied(self, assignment: Assignment) -> bool:
        raise NotImplementedError

    def is_consistent(self, assignment: Assignment) -> bool:
        """False only if the *partial* assignment already violates us."""
        if all(v in assignment for v in self.variables):
            return self.is_satisfied(assignment)
        return True

    def prune(self, var: str, value: int, domains: dict[str, Domain], assignment: Assignment) -> bool:
        """Optional forward-checking hook after ``var := value``.

        Mutates ``domains`` (for *unassigned* variables only) and returns
        False if some domain was wiped out.  The default does nothing.
        """
        return True


class Problem:
    """A constraint-satisfaction problem: named variables + constraints."""

    def __init__(self) -> None:
        self._domains: dict[str, Domain] = {}
        self._constraints: list[Constraint] = []
        self._by_var: dict[str, list[Constraint]] = {}

    # -- declaration ------------------------------------------------------------

    def add_variable(self, name: str, domain: Domain | Iterable[int]) -> None:
        if name in self._domains:
            raise SolverError(f"variable {name!r} already declared")
        if not isinstance(domain, Domain):
            domain = Domain(domain)
        if not domain:
            raise SolverError(f"variable {name!r} declared with an empty domain")
        self._domains[name] = domain
        self._by_var.setdefault(name, [])

    def add_constraint(self, constraint: Constraint) -> None:
        for var in constraint.variables:
            if var not in self._domains:
                raise SolverError(f"constraint mentions undeclared variable {var!r}")
        self._constraints.append(constraint)
        for var in constraint.variables:
            self._by_var[var].append(constraint)

    # -- access -------------------------------------------------------------------

    @property
    def variables(self) -> list[str]:
        return list(self._domains)

    def domain(self, name: str) -> Domain:
        try:
            return self._domains[name]
        except KeyError:
            raise SolverError(f"unknown variable {name!r}") from None

    @property
    def domains(self) -> dict[str, Domain]:
        return dict(self._domains)

    @property
    def constraints(self) -> list[Constraint]:
        return list(self._constraints)

    def constraints_on(self, var: str) -> list[Constraint]:
        return list(self._by_var.get(var, ()))
