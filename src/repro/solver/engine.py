"""Backtracking search engine with forward checking.

The engine enumerates models of a :class:`~repro.solver.csp.Problem`.
Search is depth-first over variables chosen by minimum-remaining-values
(MRV), with per-assignment forward checking through each constraint's
``prune`` hook and early rejection through ``is_consistent``.

The public surface mirrors what the paper needs from its SMT solver:
``solve_one`` (SAT query), ``solutions`` (model enumeration), and blocking
via :class:`~repro.solver.constraints.Blocking`.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.errors import SolverError
from repro.solver.constraints import Blocking
from repro.solver.csp import Assignment, Problem
from repro.solver.domain import Domain


class Statistics:
    """Search counters, useful for benchmarks and regression tests."""

    def __init__(self) -> None:
        self.nodes = 0
        self.backtracks = 0
        self.solutions = 0

    def __repr__(self) -> str:
        return (
            f"Statistics(nodes={self.nodes}, backtracks={self.backtracks}, "
            f"solutions={self.solutions})"
        )


class Solver:
    """Search over one :class:`Problem`; reusable across blocking rounds."""

    def __init__(self, problem: Problem) -> None:
        self._problem = problem
        self.stats = Statistics()

    # -- public API -------------------------------------------------------------

    def solve_one(self) -> dict[str, int] | None:
        """The first model found, or None when unsatisfiable."""
        for model in self.solutions():
            return model
        return None

    def is_satisfiable(self) -> bool:
        return self.solve_one() is not None

    def solutions(self, limit: int | None = None) -> Iterator[dict[str, int]]:
        """Enumerate models depth-first (deterministic order)."""
        if limit is not None and limit <= 0:
            return
        domains = dict(self._problem.domains)
        # Apply unary constraints once, up front.
        for constraint in self._problem.constraints:
            if len(constraint.variables) == 1:
                var = constraint.variables[0]
                domain = domains[var]
                domains[var] = domain.restrict(
                    lambda v, c=constraint, name=var: c.is_satisfied({name: v})
                )
                if not domains[var]:
                    return
        yield from self._search({}, domains, [0] if limit is None else [limit])

    def solve_blocking(self, max_models: int | None = None) -> list[dict[str, int]]:
        """Enumerate models by repeated solve + block — the paper's loop.

        Functionally equivalent to ``list(solutions(max_models))`` but goes
        through explicit :class:`Blocking` constraints, mirroring how the
        paper re-invokes the SMT solver with previous verdicts excluded
        (Fig 5e).  Mutates the problem by adding blocking constraints.
        """
        models: list[dict[str, int]] = []
        while max_models is None or len(models) < max_models:
            model = self.solve_one()
            if model is None:
                break
            models.append(model)
            self._problem.add_constraint(Blocking(model))
        return models

    # -- search ----------------------------------------------------------------------

    def _search(
        self,
        assignment: dict[str, int],
        domains: dict[str, Domain],
        budget: list[int],
    ) -> Iterator[dict[str, int]]:
        if len(assignment) == len(domains):
            self.stats.solutions += 1
            yield dict(assignment)
            if budget[0] > 0:
                budget[0] -= 1
                if budget[0] == 0:
                    budget[0] = -1  # exhausted
            return
        if budget[0] < 0:
            return

        var = self._select_variable(assignment, domains)
        for value in domains[var].values:
            if budget[0] < 0:
                return
            self.stats.nodes += 1
            assignment[var] = value
            if self._consistent(var, assignment):
                pruned = dict(domains)
                if self._forward_check(var, value, pruned, assignment):
                    yield from self._search(assignment, pruned, budget)
                else:
                    self.stats.backtracks += 1
            else:
                self.stats.backtracks += 1
            del assignment[var]

    def _select_variable(self, assignment: Assignment, domains: Mapping[str, Domain]) -> str:
        best: str | None = None
        best_size = None
        for var, domain in domains.items():
            if var in assignment:
                continue
            size = len(domain)
            if best_size is None or size < best_size:
                best, best_size = var, size
                if size == 1:
                    break
        if best is None:
            raise SolverError("no unassigned variable left")  # pragma: no cover
        return best

    def _consistent(self, var: str, assignment: Assignment) -> bool:
        for constraint in self._problem.constraints_on(var):
            if not constraint.is_consistent(assignment):
                return False
        return True

    def _forward_check(
        self,
        var: str,
        value: int,
        domains: dict[str, Domain],
        assignment: Assignment,
    ) -> bool:
        for constraint in self._problem.constraints_on(var):
            if not constraint.prune(var, value, domains, assignment):
                return False
        return True


def solve_one(problem: Problem) -> dict[str, int] | None:
    """Module-level convenience wrapper."""
    return Solver(problem).solve_one()


def all_solutions(problem: Problem, limit: int | None = None) -> list[dict[str, int]]:
    """Module-level convenience wrapper."""
    return list(Solver(problem).solutions(limit))
