"""Finite-domain constraint solver — the library's SMT-solver substitute.

See DESIGN.md: the paper's SMT queries (cut sequences + timestamp
reassignments) are finite-domain problems, on which this solver is sound
and complete.
"""

from repro.solver.constraints import (
    AllDifferent,
    BinaryRelation,
    Blocking,
    ConditionalOrder,
    FunctionConstraint,
    Implication,
    UnaryPredicate,
    table_constraint,
)
from repro.solver.csp import Assignment, Constraint, Problem
from repro.solver.domain import Domain
from repro.solver.engine import Solver, Statistics, all_solutions, solve_one

__all__ = [
    "AllDifferent",
    "Assignment",
    "BinaryRelation",
    "Blocking",
    "ConditionalOrder",
    "Constraint",
    "Domain",
    "FunctionConstraint",
    "Implication",
    "Problem",
    "Solver",
    "Statistics",
    "UnaryPredicate",
    "all_solutions",
    "solve_one",
    "table_constraint",
]
