"""Finite integer domains for the constraint solver."""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import SolverError


class Domain:
    """An immutable, sorted finite set of integers.

    Domains are small (timestamp windows, position ranges), so a sorted
    tuple plus a set gives O(1) membership and cheap min/max without the
    complexity of interval trees.
    """

    __slots__ = ("_values", "_set")

    def __init__(self, values: Iterable[int]) -> None:
        ordered = sorted(set(values))
        for v in ordered:
            if not isinstance(v, int) or isinstance(v, bool):
                raise SolverError(f"domain values must be ints, got {v!r}")
        self._values: tuple[int, ...] = tuple(ordered)
        self._set: frozenset[int] = frozenset(ordered)

    # -- constructors -------------------------------------------------------

    @staticmethod
    def range(lo: int, hi: int) -> "Domain":
        """Inclusive integer range ``[lo, hi]``."""
        if hi < lo:
            return Domain(())
        return Domain(range(lo, hi + 1))

    @staticmethod
    def singleton(value: int) -> "Domain":
        return Domain((value,))

    @staticmethod
    def boolean() -> "Domain":
        return Domain((0, 1))

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._values)

    def __bool__(self) -> bool:
        return bool(self._values)

    def __iter__(self) -> Iterator[int]:
        return iter(self._values)

    def __contains__(self, value: int) -> bool:
        return value in self._set

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Domain):
            return NotImplemented
        return self._values == other._values

    def __hash__(self) -> int:
        return hash(self._values)

    @property
    def values(self) -> tuple[int, ...]:
        return self._values

    def min(self) -> int:
        if not self._values:
            raise SolverError("empty domain has no minimum")
        return self._values[0]

    def max(self) -> int:
        if not self._values:
            raise SolverError("empty domain has no maximum")
        return self._values[-1]

    def is_singleton(self) -> bool:
        return len(self._values) == 1

    # -- derivation -------------------------------------------------------------

    def remove(self, value: int) -> "Domain":
        if value not in self._set:
            return self
        return Domain(v for v in self._values if v != value)

    def restrict(self, predicate) -> "Domain":
        return Domain(v for v in self._values if predicate(v))

    def intersect(self, other: "Domain") -> "Domain":
        return Domain(self._set & other._set)

    def at_least(self, bound: int) -> "Domain":
        return Domain(v for v in self._values if v >= bound)

    def at_most(self, bound: int) -> "Domain":
        return Domain(v for v in self._values if v <= bound)

    def __repr__(self) -> str:
        if len(self._values) > 8:
            return f"Domain({self._values[0]}..{self._values[-1]}, n={len(self._values)})"
        return f"Domain({list(self._values)})"
