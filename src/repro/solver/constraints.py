"""Constraint library for the finite-domain solver."""

from __future__ import annotations

import operator
from typing import Callable, Iterable, Mapping, Sequence

from repro.errors import SolverError
from repro.solver.csp import Assignment, Constraint
from repro.solver.domain import Domain

_OPS: dict[str, Callable[[int, int], bool]] = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "==": operator.eq,
    "!=": operator.ne,
}


class BinaryRelation(Constraint):
    """``x <op> y + offset`` for two variables x, y.

    Supports forward-checking bound propagation for the ordering ops.
    """

    def __init__(self, x: str, y: str, op: str, offset: int = 0) -> None:
        if op not in _OPS:
            raise SolverError(f"unknown relation {op!r}")
        if x == y:
            raise SolverError("BinaryRelation needs two distinct variables")
        super().__init__((x, y))
        self.x, self.y, self.op, self.offset = x, y, op, offset
        self._fn = _OPS[op]

    def is_satisfied(self, assignment: Assignment) -> bool:
        return self._fn(assignment[self.x], assignment[self.y] + self.offset)

    def prune(self, var: str, value: int, domains: dict[str, Domain], assignment: Assignment) -> bool:
        other = self.y if var == self.x else self.x if var == self.y else None
        if other is None or other in assignment:
            return True
        domain = domains[other]
        if var == self.x:
            # value <op> other + offset
            new = domain.restrict(lambda v: self._fn(value, v + self.offset))
        else:
            # other <op> value + offset
            new = domain.restrict(lambda v: self._fn(v, value + self.offset))
        domains[other] = new
        return bool(new)


class UnaryPredicate(Constraint):
    """``pred(x)`` for one variable; pruned immediately at search start."""

    def __init__(self, x: str, predicate: Callable[[int], bool]) -> None:
        super().__init__((x,))
        self.x = x
        self.predicate = predicate

    def is_satisfied(self, assignment: Assignment) -> bool:
        return bool(self.predicate(assignment[self.x]))


class AllDifferent(Constraint):
    """All listed variables take pairwise distinct values."""

    def __init__(self, variables: Iterable[str]) -> None:
        super().__init__(variables)
        if len(set(self.variables)) != len(self.variables):
            raise SolverError("AllDifferent variables must be distinct names")

    def is_satisfied(self, assignment: Assignment) -> bool:
        values = [assignment[v] for v in self.variables]
        return len(set(values)) == len(values)

    def is_consistent(self, assignment: Assignment) -> bool:
        seen: set[int] = set()
        for var in self.variables:
            if var in assignment:
                value = assignment[var]
                if value in seen:
                    return False
                seen.add(value)
        return True

    def prune(self, var: str, value: int, domains: dict[str, Domain], assignment: Assignment) -> bool:
        if var not in self.variables:
            return True
        for other in self.variables:
            if other == var or other in assignment:
                continue
            new = domains[other].remove(value)
            domains[other] = new
            if not new:
                return False
        return True


class Implication(Constraint):
    """``antecedent(assignment) -> consequent(assignment)`` over given vars.

    Both sides are predicates over the *full* assignment of the mentioned
    variables; evaluation waits until all are assigned.
    """

    def __init__(
        self,
        variables: Iterable[str],
        antecedent: Callable[[Assignment], bool],
        consequent: Callable[[Assignment], bool],
    ) -> None:
        super().__init__(variables)
        self.antecedent = antecedent
        self.consequent = consequent

    def is_satisfied(self, assignment: Assignment) -> bool:
        return (not self.antecedent(assignment)) or self.consequent(assignment)


class FunctionConstraint(Constraint):
    """Arbitrary predicate over the listed variables (fully assigned)."""

    def __init__(self, variables: Iterable[str], fn: Callable[..., bool]) -> None:
        super().__init__(variables)
        self.fn = fn

    def is_satisfied(self, assignment: Assignment) -> bool:
        return bool(self.fn(*(assignment[v] for v in self.variables)))


class ConditionalOrder(Constraint):
    """The paper's cut/time coupling: ``pos_x < pos_y  ->  t_x <= t_y``.

    Mentions four variables (two positions, two timestamps).  Checked as
    the biconditional pair on both orders, which is exactly the trace
    monotonicity constraint of Section V-B.
    """

    def __init__(self, pos_x: str, pos_y: str, t_x: str, t_y: str) -> None:
        super().__init__((pos_x, pos_y, t_x, t_y))
        self.pos_x, self.pos_y, self.t_x, self.t_y = pos_x, pos_y, t_x, t_y

    def is_satisfied(self, assignment: Assignment) -> bool:
        px, py = assignment[self.pos_x], assignment[self.pos_y]
        tx, ty = assignment[self.t_x], assignment[self.t_y]
        if px < py:
            return tx <= ty
        if py < px:
            return ty <= tx
        return False  # positions are distinct by construction

    def is_consistent(self, assignment: Assignment) -> bool:
        have = {v: assignment[v] for v in self.variables if v in assignment}
        if len(have) < 4:
            # Partial check: if both positions and both times are known the
            # full check applies; with fewer, any completion might work.
            if (
                self.pos_x in have
                and self.pos_y in have
                and self.t_x in have
                and self.t_y in have
            ):
                return self.is_satisfied(assignment)
            return True
        return self.is_satisfied(assignment)


class Blocking(Constraint):
    """Blocks one full assignment (the solver's "no duplicate models")."""

    def __init__(self, model: Mapping[str, int]) -> None:
        if not model:
            raise SolverError("cannot block the empty assignment")
        super().__init__(tuple(model))
        self.model = dict(model)

    def is_satisfied(self, assignment: Assignment) -> bool:
        return any(assignment[v] != value for v, value in self.model.items())

    def is_consistent(self, assignment: Assignment) -> bool:
        for var, value in self.model.items():
            if var in assignment and assignment[var] != value:
                return True
        if all(v in assignment for v in self.model):
            return False
        return True


def table_constraint(variables: Sequence[str], rows: Iterable[tuple[int, ...]]) -> Constraint:
    """Extensional constraint: the variable tuple must equal some row."""
    allowed = {tuple(row) for row in rows}
    names = tuple(variables)

    def check(*values: int) -> bool:
        return tuple(values) in allowed

    return FunctionConstraint(names, check)
