#!/usr/bin/env python3
"""Run every figure's scaled-down experiment and print markdown tables.

Used to generate the measured columns of EXPERIMENTS.md:

    python scripts/run_experiments.py > /tmp/experiments.out

Each section mirrors one benchmark file in ``benchmarks/`` (same
workloads, same budgets), so numbers here and ``pytest benchmarks/
--benchmark-only`` agree up to noise.
"""

from __future__ import annotations

import time

from repro.bench.reporting import format_batch_report
from repro.bench.runner import run_batch_timed
from repro.bench.workload import WorkloadSpec, formula_for, generate_workload, model_for_formula
from repro.chain.log import computation_from_chains
from repro.distributed.segmentation import segments_for_frequency
from repro.monitor import make_monitor
from repro.protocols.auction import AuctionBehavior, run_auction
from repro.protocols.scenarios import SWAP2_CONFORMING
from repro.protocols.swap2 import run_swap2
from repro.protocols.swap3 import run_swap3
from repro.service import MonitorService
from repro.specs import auction_specs, swap2_specs, swap3_specs

TRACE_BUDGET = 400
#: The paper's own per-segment verdict budget (Fig 5e sweeps 1..4).
VERDICT_CAP = 4


def timed(monitor, computation):
    start = time.perf_counter()
    result = monitor.run(computation)
    return result, time.perf_counter() - start


def table(title: str, header: list[str], rows: list[list[str]]) -> None:
    print(f"\n### {title}\n")
    print("| " + " | ".join(header) + " |")
    print("|" + "|".join("---" for _ in header) + "|")
    for row in rows:
        print("| " + " | ".join(row) + " |")


def workload(model: str, processes: int, length=1.0, rate=10.0, eps=15):
    return generate_workload(
        WorkloadSpec(
            model=model, processes=processes, length_seconds=length,
            events_per_second=rate, epsilon_ms=eps,
        )
    )


def fig5a() -> None:
    rows = []
    for name in ("phi1", "phi2", "phi3", "phi4", "phi5", "phi6"):
        for processes in (1, 2, 3):
            comp = workload(model_for_formula(name), processes)
            monitor = make_monitor(
                formula_for(name, processes, 600), "smt", segments=8,
                max_traces_per_segment=TRACE_BUDGET,
                max_distinct_per_segment=VERDICT_CAP,
            )
            result, seconds = timed(monitor, comp)
            rows.append([
                name, str(processes), str(len(comp)), f"{seconds:.3f}",
                "".join("TF"[v is False] for v in sorted(result.verdicts, reverse=True)),
            ])
    table("Fig 5a — formula impact", ["formula", "|P|", "events", "runtime (s)", "verdicts"], rows)


def fig5b() -> None:
    rows = []
    for segments in (8, 15):
        for eps in (5, 15, 25, 35):
            comp = workload("fischer", 2, eps=eps)
            monitor = make_monitor(
                formula_for("phi4", 2, 600), "smt", segments=segments,
                max_traces_per_segment=TRACE_BUDGET,
                max_distinct_per_segment=VERDICT_CAP,
            )
            result, seconds = timed(monitor, comp)
            traces = sum(r.traces_enumerated for r in result.segment_reports)
            rows.append([str(segments), str(eps), str(traces), f"{seconds:.3f}"])
    table("Fig 5b — epsilon impact", ["g", "epsilon (ms)", "traces", "runtime (s)"], rows)


def fig5c() -> None:
    rows = []
    for name, processes in (("phi4", 2), ("phi6", 2)):
        comp = workload(model_for_formula(name), processes)
        for frequency in (0.5, 1.0, 2.0, 4.0, 8.0):
            segments = segments_for_frequency(comp, frequency)
            monitor = make_monitor(
                formula_for(name, processes, 600), "smt", segments=segments,
                max_traces_per_segment=TRACE_BUDGET,
                max_distinct_per_segment=VERDICT_CAP,
            )
            _, seconds = timed(monitor, comp)
            rows.append([name, f"{frequency:.2f}", str(segments), f"{seconds:.3f}"])
    table(
        "Fig 5c — segment frequency impact",
        ["formula", "freq (1/s)", "g", "runtime (s)"],
        rows,
    )


def fig5d() -> None:
    rows = []
    for name, processes in (("phi4", 2), ("phi6", 2)):
        for length in (0.5, 1.0, 1.5, 2.0):
            comp = workload(model_for_formula(name), processes, length=length)
            segments = max(1, round(8 * length))
            monitor = make_monitor(
                formula_for(name, processes, 600), "smt", segments=segments,
                max_traces_per_segment=TRACE_BUDGET,
                max_distinct_per_segment=VERDICT_CAP,
            )
            _, seconds = timed(monitor, comp)
            rows.append([name, f"{length:.1f}", str(len(comp)), f"{seconds:.3f}"])
    table(
        "Fig 5d — computation length impact",
        ["formula", "l (s)", "events", "runtime (s)"],
        rows,
    )


def fig5e() -> None:
    rows = []
    for name, processes in (("phi4", 2), ("phi6", 2)):
        comp = workload(model_for_formula(name), processes, eps=35)
        for max_distinct in (1, 2, 3, 4):
            monitor = make_monitor(
                formula_for(name, processes, 600), "smt", segments=8,
                max_distinct_per_segment=max_distinct,
                max_traces_per_segment=400 * max_distinct,
                saturate=False,
            )
            _, seconds = timed(monitor, comp)
            rows.append([name, str(max_distinct), f"{seconds:.3f}"])
    table(
        "Fig 5e — solutions per segment impact",
        ["formula", "max distinct verdicts", "runtime (s)"],
        rows,
    )


def fig5f() -> None:
    rows = []
    for name, processes in (("phi4", 1), ("phi4", 2), ("phi6", 1), ("phi6", 2)):
        for rate in (5.0, 10.0, 15.0):
            comp = workload(model_for_formula(name), processes, rate=rate)
            monitor = make_monitor(
                formula_for(name, processes, 600), "smt", segments=8,
                max_traces_per_segment=TRACE_BUDGET,
                max_distinct_per_segment=VERDICT_CAP,
            )
            _, seconds = timed(monitor, comp)
            rows.append([name, str(processes), f"{rate:.0f}", str(len(comp)), f"{seconds:.3f}"])
    table(
        "Fig 5f — event rate impact",
        ["formula", "|P|", "rate (ev/s)", "events", "runtime (s)"],
        rows,
    )


def fig6() -> None:
    rows = []
    eps, delta = 5, 500
    swap2_points = {
        "2-party/steps2": (1, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0),
        "2-party/steps4": (1, 0, 1, 0, 1, 0, 1, 0, 0, 0, 0, 0),
        "2-party/steps6": tuple(SWAP2_CONFORMING),
    }
    for label, behavior in swap2_points.items():
        setup = run_swap2(list(behavior), epsilon_ms=eps, delta_ms=delta)
        comp = computation_from_chains([setup.apricot, setup.banana], eps)
        monitor = make_monitor(
            swap2_specs.liveness(delta), "smt", segments=1,
            timestamp_samples=3, max_traces_per_segment=TRACE_BUDGET,
        )
        result, seconds = timed(monitor, comp)
        rows.append([label, "1", str(len(comp)), f"{seconds:.3f}",
                     str(sorted(result.verdicts))])
    swap3_points = {
        "3-party/steps6": (1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0),
        "3-party/steps9": (1, 1, 1, 1, 1, 1, 1, 1, 1, 0, 0, 0),
        "3-party/steps12": (1,) * 12,
    }
    for label, behavior in swap3_points.items():
        setup = run_swap3(list(behavior), epsilon_ms=eps, delta_ms=delta)
        comp = computation_from_chains(setup.chains.values(), eps)
        monitor = make_monitor(
            swap3_specs.liveness(delta), "smt", segments=2,
            timestamp_samples=2, max_traces_per_segment=TRACE_BUDGET,
        )
        result, seconds = timed(monitor, comp)
        rows.append([label, "2", str(len(comp)), f"{seconds:.3f}",
                     str(sorted(result.verdicts))])
    auction_points = {
        "auction/quiet": AuctionBehavior(
            carol_bid="skip", coin_declaration="skip", tckt_declaration="skip"),
        "auction/honest": AuctionBehavior(),
        "auction/contested": AuctionBehavior(
            coin_declaration="sb", tckt_declaration="sc",
            bob_challenges=True, carol_challenges=True),
    }
    for label, behavior in auction_points.items():
        setup = run_auction(behavior, epsilon_ms=eps, delta_ms=delta)
        comp = computation_from_chains([setup.coin, setup.tckt], eps)
        monitor = make_monitor(
            auction_specs.liveness(delta), "smt", segments=2,
            timestamp_samples=2, max_traces_per_segment=TRACE_BUDGET,
        )
        result, seconds = timed(monitor, comp)
        rows.append([label, "2", str(len(comp)), f"{seconds:.3f}",
                     str(sorted(result.verdicts))])
    table(
        "Fig 6 — blockchain experiments",
        ["scenario", "g", "events", "runtime (s)", "verdicts"],
        rows,
    )


def delta_vs_epsilon() -> None:
    rows = []
    delta = 20
    for eps in (2, 4, 8, 12, 16, 20, 30):
        setup = run_swap2(list(SWAP2_CONFORMING), epsilon_ms=eps, delta_ms=delta)
        comp = computation_from_chains([setup.apricot, setup.banana], eps)
        monitor = make_monitor(swap2_specs.liveness(delta), "fast")
        result, seconds = timed(monitor, comp)
        rows.append([
            str(eps), f"{eps / delta:.2f}", str(sorted(result.verdicts)), f"{seconds:.3f}",
        ])
    table(
        "Section VI-B.3 — Delta vs epsilon (Delta = 20 ms, conforming run, exact)",
        ["epsilon (ms)", "eps/Delta", "verdict set", "runtime (s)"],
        rows,
    )


def parallel_batch() -> None:
    """Throughput section: one batch of Fig 5d computations over the
    persistent :class:`~repro.service.MonitorService` pool."""
    comps = [
        generate_workload(
            WorkloadSpec(
                model=model_for_formula("phi4"), processes=2, length_seconds=2.0,
                events_per_second=10.0, epsilon_ms=15, seed=seed,
            )
        )
        for seed in range(8)
    ]
    formula = formula_for("phi4", 2, 600)
    print()
    for workers in (1, 4):
        with MonitorService(
            workers=workers, formula=formula, monitor="smt", segments=16,
            max_traces_per_segment=TRACE_BUDGET,
            max_distinct_per_segment=VERDICT_CAP,
        ) as service:
            report = run_batch_timed(formula, comps, service=service)
        print(format_batch_report(f"service batch — {workers} worker(s)", report))
        print()


def main() -> None:
    print("# Measured experiment series (scaled-down parameters)")
    fig5a()
    fig5b()
    fig5c()
    fig5d()
    fig5e()
    fig5f()
    fig6()
    delta_vs_epsilon()
    parallel_batch()


if __name__ == "__main__":
    main()
