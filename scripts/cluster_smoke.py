"""Cluster smoke: the elastic control plane, end-to-end, asserted.

One scripted scenario covering the whole membership lifecycle against a
live skewed workload (1 hot stream at 4× the event rate of the cold
ones, so the rebalancer has real pressure to react to):

1. a :class:`~repro.cluster.ClusterRegistry` starts (own process,
   token-authenticated), and a :class:`~repro.service.MonitorService`
   boots on **one local endpoint** plus ``registry=``;
2. mid-workload, **two authenticated TCP agents join late** — one
   thread-mode, one ``--processes`` (a :class:`ProcessPoolAgent`
   forking an executor child per connection); the pool must grow to
   three live endpoints and the rebalancer must treat the joins as
   placement events (at least one stream migrates onto a joined agent);
3. later, one agent **retires gracefully** (SIGTERM → registry leave →
   the service drains it): its sessions migrate off with **zero
   recoveries** (graceful ≠ crash) and no ``ServiceError`` ever
   reaches the caller;
4. the run finishes with verdict multisets **bit-identical** to a
   frozen static-pool run of the same streams, and every outstanding
   counter settled to zero;
5. an unauthenticated client is **rejected before dispatch** with a
   typed error naming the endpoint.

Run standalone (CI cluster-smoke job)::

    PYTHONPATH=src python scripts/cluster_smoke.py
    PYTHONPATH=src python scripts/cluster_smoke.py --ticks 60 --tick 0.05
"""

from __future__ import annotations

import argparse
import random
import sys
import time

from repro.errors import ServiceError
from repro.mtl import parse
from repro.service import MonitorService
from repro.transport.agent import spawn_agent

SPEC = parse("a U[0,600) b")
EPSILON = 2
TOKEN = "cluster-smoke-token"
COLD_STREAMS = 6
#: Hot-stream event density per tick.  Kept at 4 — the hot stream also
#: advances its frontier every tick (cold ones every 4th), so every
#: stream closes segments of ~4 events; segment trace enumeration is
#: exponential in per-segment events, and the smoke prices the control
#: plane, not enumeration.  The rebalancer still sees a 4× rate gap.
HOT_MULTIPLIER = 4


def _streams(ticks: int) -> dict[int, list[tuple[str, int, set]]]:
    """Deterministic skewed feed: stream 0 hot (denser ticks), rest cold.

    The hot stream carries ``HOT_MULTIPLIER`` P1 events per tick and the
    driver advances it every tick; cold streams get one event per tick
    and advance every fourth.  Every stream therefore closes segments of
    ~4 events — the skew is pure *rate*, never per-segment density, so
    monitoring stays cheap while the rebalancer sees the gap.
    """
    streams: dict[int, list[tuple[str, int, set]]] = {}
    for seed in range(COLD_STREAMS + 1):
        rng = random.Random(seed)
        per_tick = HOT_MULTIPLIER if seed == 0 else 1
        events = []
        for t in range(1, ticks + 1):
            for sub in range(per_tick):
                t_ms = t * 10 + sub
                props = {"a"} if rng.random() < 0.8 else {"a", "b"}
                events.append(("P1", t_ms, props))
            if t % 5 == 0:
                events.append(("P2", t * 10 + 9, {"b"} if t % 10 == 0 else set()))
        streams[seed] = events
    return streams


def _drive(handles: dict, streams: dict, ticks: int, tick_seconds: float, churn=None):
    """Interleave all streams tick by tick; fire churn callbacks by tick."""
    cursors = {seed: 0 for seed in streams}
    for t in range(1, ticks + 1):
        boundary = t * 10
        for seed, events in streams.items():
            session = handles[seed]
            cursor = cursors[seed]
            while cursor < len(events) and events[cursor][1] < boundary:
                process, t_ms, props = events[cursor]
                session.observe(process, t_ms, props)
                cursor += 1
            cursors[seed] = cursor
            # Hot stream advances every tick, cold ones every fourth —
            # keeps segments small (enumeration is exponential in them).
            if seed == 0 or t % 4 == 0:
                session.advance_to(boundary)
        if churn and t in churn:
            churn[t]()
        if tick_seconds:
            time.sleep(tick_seconds)
    return {seed: handles[seed].finish() for seed in streams}


def _verdict_multisets(results: dict) -> list[str]:
    return sorted(
        "".join("TF"[v is False] for v in sorted(r.verdicts, reverse=True))
        for r in results.values()
    )


def _static_reference(streams: dict, ticks: int) -> list[str]:
    """The frozen-pool run the elastic one must match bit-for-bit."""
    with MonitorService(workers=2) as service:
        handles = {
            seed: service.open_session(SPEC, EPSILON) for seed in streams
        }
        results = _drive(handles, streams, ticks, tick_seconds=0.0)
    return _verdict_multisets(results)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ticks", type=int, default=40, help="workload length")
    parser.add_argument(
        "--tick", type=float, default=0.05, metavar="SECONDS",
        help="pause per tick (gives joins/retires time to land mid-stream)",
    )
    args = parser.parse_args(argv)

    from repro.cluster import spawn_registry

    streams = _streams(args.ticks)
    expected = _static_reference(streams, args.ticks)
    print(f"static reference: {COLD_STREAMS + 1} streams, verdicts frozen")

    registry_popen, rhost, rport = spawn_registry(token=TOKEN)
    registry_spec = f"tcp://{rhost}:{rport}"
    agents: list = []
    join_deadline_missed = []

    try:
        with MonitorService(
            endpoints=["local"],
            registry=registry_spec,
            token=TOKEN,
            rebalance="periodic",
            rebalance_interval=0.05,
        ) as service:
            handles = {
                seed: service.open_session(SPEC, EPSILON) for seed in streams
            }
            assert len(service.endpoints()) == 1

            def late_join() -> None:
                # One thread-mode agent, one process-pool agent — both
                # authenticated, both announced through the registry.
                agents.append(spawn_agent(token=TOKEN, registry=registry_spec))
                agents.append(
                    spawn_agent(token=TOKEN, registry=registry_spec, processes=True)
                )
                deadline = time.monotonic() + 10
                while time.monotonic() < deadline:
                    if len(service.endpoints()) == 3:
                        return
                    time.sleep(0.05)
                join_deadline_missed.append(service.endpoints())

            def graceful_retire() -> None:
                live = sum(1 for dead in service.dead_endpoints() if not dead)
                assert live == 3, f"expected 3 live endpoints, saw {live}"
                popen, host, port = agents[0]
                popen.terminate()  # SIGTERM → registry leave → service drain
                address = f"tcp://{host}:{port}"
                deadline = time.monotonic() + 20
                while time.monotonic() < deadline:
                    index = service.endpoints().index(address)
                    if service.dead_endpoints()[index]:
                        return
                    time.sleep(0.05)
                raise AssertionError(f"agent at {address} never drained out")

            churn = {
                max(1, args.ticks // 4): late_join,
                max(2, (3 * args.ticks) // 4): graceful_retire,
            }
            results = _drive(handles, streams, args.ticks, args.tick, churn)

            assert not join_deadline_missed, (
                f"late join never grew the pool: {join_deadline_missed}"
            )
            migrations = sum(handles[seed].migrations for seed in streams)
            recoveries = sum(handles[seed].recoveries for seed in streams)
            assert migrations >= 1, (
                "the rebalancer never treated the joins as placement events"
            )
            assert recoveries == 0, (
                f"a graceful retire must not look like a crash "
                f"({recoveries} recoveries)"
            )
            got = _verdict_multisets(results)
            assert got == expected, "elastic run diverged from the frozen pool"
            deadline = time.monotonic() + 15
            while any(service.outstanding()) and time.monotonic() < deadline:
                time.sleep(0.02)
            leftover = service.outstanding()
            assert not any(leftover), f"outstanding counters leaked: {leftover}"
            print(
                f"elastic run: pool 1→3→2, {migrations} migration(s), "
                f"0 recoveries, verdicts bit-identical, counters settled"
            )

            # Unauthenticated rejection: before any frame is dispatched,
            # with a typed error naming the endpoint.
            _, host, port = agents[1]
            try:
                MonitorService(endpoints=[f"tcp://{host}:{port}"], token="")
            except ServiceError as exc:
                message = str(exc)
                assert f"tcp://{host}:{port}" in message, message
                print(f"unauthenticated client rejected: {message}")
            else:
                raise AssertionError("unauthenticated connection was accepted")
    finally:
        for popen, _, _ in agents:
            popen.kill()
            popen.wait(timeout=10)
            popen.stdout.close()
        registry_popen.kill()
        registry_popen.wait(timeout=10)
        registry_popen.stdout.close()
    print("cluster smoke: join, rebalance, retire, auth — all asserted")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
