#!/usr/bin/env python3
"""Host monitor-service workers on this machine behind a TCP listener.

Static pool — run one agent per core you want to lend, then point a
:class:`~repro.service.MonitorService` at them from anywhere::

    # on the worker host(s):
    PYTHONPATH=src python scripts/run_worker_agent.py --host 0.0.0.0 --port 7701
    PYTHONPATH=src python scripts/run_worker_agent.py --host 0.0.0.0 --port 7702

    # on the client:
    MonitorService(endpoints=["tcp://worker-host:7701", "tcp://worker-host:7702"])

Elastic pool — run **one** agent per host with ``--processes`` (each
accepted connection forks its own executor process, so a single agent
lends the whole machine) and announce it to a cluster registry; services
built with ``registry=`` pick it up live, no endpoint list anywhere::

    # once, anywhere reachable:
    PYTHONPATH=src python scripts/run_registry.py --host 0.0.0.0 --port 7700

    # on each worker host:
    export REPRO_AGENT_TOKEN=...      # one shared secret = one cluster
    PYTHONPATH=src python scripts/run_worker_agent.py \
        --host 0.0.0.0 --port 7701 --processes \
        --registry tcp://registry-host:7700 --advertise worker-host

    # on the client:
    MonitorService(registry="tcp://registry-host:7700")

``--port 0`` binds an ephemeral port; the agent prints the bound address
on stdout once it is accepting connections.  The agent serves until
killed; **SIGTERM is a graceful leave** — it deregisters from the
registry first, waits up to ``--drain-timeout`` seconds while services
migrate sessions off, then exits with nothing lost.  Thin wrapper over
``python -m repro.transport.agent``.

Authentication: with ``--token`` (or ``REPRO_AGENT_TOKEN`` exported) the
agent rejects any connection that fails the HMAC challenge/response
handshake before a single frame is dispatched.  The token gates access
but does not encrypt the stream — the protocol still carries pickle
payloads, so an *authenticated* peer can run arbitrary code in the agent
process.  Only bind ``--host 0.0.0.0`` on a private network you control
(or tunnel the port); see the trust-boundary note in
``repro.transport.agent``.
"""

from repro.transport.agent import main

if __name__ == "__main__":
    raise SystemExit(main())
