#!/usr/bin/env python3
"""Host monitor-service workers on this machine behind a TCP listener.

Run one agent per core you want to lend to a pool, then point a
:class:`~repro.service.MonitorService` at them from anywhere::

    # on the worker host(s):
    PYTHONPATH=src python scripts/run_worker_agent.py --host 0.0.0.0 --port 7701
    PYTHONPATH=src python scripts/run_worker_agent.py --host 0.0.0.0 --port 7702

    # on the client:
    MonitorService(endpoints=["tcp://worker-host:7701", "tcp://worker-host:7702"])

``--port 0`` binds an ephemeral port; the agent prints the bound address
on stdout once it is accepting connections.  Each accepted connection is
one logical worker (its own session registry); the agent serves until
killed.  Thin wrapper over ``python -m repro.transport.agent``.

WARNING: the protocol carries pickle payloads — any peer that can reach
the port can run arbitrary code in the agent process.  Only bind
``--host 0.0.0.0`` on a private network you control (or tunnel the
port); see the trust-boundary note in ``repro.transport.agent``.
"""

from repro.transport.agent import main

if __name__ == "__main__":
    raise SystemExit(main())
