"""Seeded chaos matrix: fault class × transport × control plane.

Where ``chaos_smoke.py`` prices the cleanest failure there is (SIGKILL
→ instant EOF), this matrix prices *gray* ones: frames dropped, delayed,
duplicated, reordered, corrupted, or one-way-partitioned while both
endpoints stay alive.  Faults come from a deterministic
:class:`~repro.transport.faults.FaultSchedule`, so every cell — and
every failure — reproduces from nothing but its printed seed::

    PYTHONPATH=src python scripts/chaos_matrix.py                   # PR lane
    PYTHONPATH=src python scripts/chaos_matrix.py --matrix full     # all cells
    PYTHONPATH=src python scripts/chaos_matrix.py --fault drop --transport tcp --seed 7

Matrix dimensions:

* **fault class** — ``drop``, ``duplicate``, ``reorder``, ``slow``
  (latency + long stalls past the call timeout: the alive-but-slow gray
  case the idempotency fence exists for), ``partition`` (one-way, heals
  after an index window), ``corrupt`` (wrapper: link loss; the decoder
  side is covered by the hostility fuzz tests);
* **transport** — ``local`` (in-process pool workers behind
  :class:`~repro.transport.FaultyTransport`) and ``tcp`` (spawned worker
  agents at millisecond heartbeat cadence behind the same wrapper);
* **control plane** — the ``registry-restart`` cell kills the cluster
  registry mid-workload and respawns it on the same port: worker agents
  must re-dial and re-register, the service must re-dial and re-watch,
  and the workload must never notice.

Asserted in every cell:

* **zero lost sessions** — every stream finishes and no error reaches
  the caller;
* **bit-identical verdicts** — each session's verdict multiset equals
  an uninterrupted in-process :class:`~repro.monitor.online.OnlineMonitor`
  replay of the same stream, whatever the schedule did to the frames;
* **bounded recovery** — outstanding-request books drain to zero within
  a fixed deadline after the workload ends.

On failure the cell prints its seed, the schedule, and a one-line repro
command; ``--artifact PATH`` additionally writes the failing cell as
JSON (the CI chaos-matrix job uploads it).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.errors import ReproError
from repro.monitor.online import OnlineMonitor
from repro.mtl import parse
from repro.retry import RetryPolicy
from repro.service import MonitorService
from repro.transport import FaultSchedule, FaultyTransport, LocalTransport, TcpTransport
from repro.transport.agent import spawn_agent

SPEC = parse("a U[0,30) b")
EPSILON = 2
TICKS = 24
SESSIONS = 6
WORKERS = 3
#: Endpoints 0..FAULTY-1 run behind the fault wrapper; the rest stay
#: clean so recovery always has a healthy target (the matrix prices the
#: protocol under faults, not total-pool loss — chaos_smoke covers the
#: every-endpoint-dies end of the spectrum).
FAULTY = 2
CHECKPOINT = {"every_events": 4}
#: Session call policy for fault cells: short per-attempt timeout (arms
#: the gray-failure fence), a few fenced retries, fast backoff.
CALL_POLICY = RetryPolicy(attempts=4, timeout=1.0, base_delay=0.05, max_delay=0.4)
#: Millisecond-scale liveness for TCP cells, so detection and recovery
#: run at test timescales instead of the production 1 s / 5 s cadence.
HEARTBEAT_INTERVAL = 0.1
LIVENESS_TIMEOUT = 1.0
#: Outstanding books must drain within this bound after the workload.
DRAIN_SECONDS = 20.0

#: Fault classes: FaultSchedule knobs per cell.  ``grace`` lets the
#: session_open round-trips through clean (they predate the per-call
#: fence), mirroring ChaosProxy's handshake grace.
FAULTS = {
    "drop": dict(drop=0.03, grace=8),
    "duplicate": dict(duplicate=0.12, grace=8),
    "reorder": dict(reorder=0.45, reorder_window=0.5, grace=8),
    "slow": dict(latency=0.001, jitter=0.002, delay=0.04, delay_seconds=1.5, grace=8),
    "partition": dict(partition="c2s", partition_start=12, partition_span=30, grace=8),
    "corrupt": dict(corrupt=0.02, grace=8),
}
TRANSPORTS = ("local", "tcp")

#: The quick lane run on every PR; the full lane adds the remaining
#: product cells plus the registry-restart cell.
PR_LANE = [
    ("drop", "local"),
    ("duplicate", "local"),
    ("reorder", "local"),
    ("partition", "local"),
    ("slow", "local"),
    ("drop", "tcp"),
]


def full_lane() -> list[tuple[str, str]]:
    return [(fault, transport) for transport in TRANSPORTS for fault in FAULTS]


def _drive(targets: dict[int, object]) -> dict[int, object]:
    """Feed every target one deterministic multi-segment stream."""
    for t in range(1, TICKS + 1):
        for seed, target in targets.items():
            shift = (t + seed) % 3
            target.observe("P1", t, {"a"} if shift else {"a", "b"})
            if (t + seed) % 5 == 0:
                target.observe("P2", t, {"b"} if (t + seed) % 10 == 0 else set())
            if t % 6 == 0:
                target.advance_to(t)
    return {seed: target.finish() for seed, target in targets.items()}


def _reference_counts() -> dict[int, object]:
    monitors = {seed: OnlineMonitor(SPEC, epsilon=EPSILON) for seed in range(SESSIONS)}
    results = _drive(monitors)
    return {seed: result.verdict_counts for seed, result in results.items()}


def build_schedule(fault: str, seed: int | str) -> FaultSchedule:
    return FaultSchedule(seed=f"{seed}:{fault}", **FAULTS[fault])


def run_cell(fault: str, transport: str, seed: int) -> dict:
    """One matrix cell; raises AssertionError/ReproError on any violation."""
    schedule = build_schedule(fault, seed)
    expected = _reference_counts()
    agents = []
    try:
        if transport == "local":
            endpoints = [
                FaultyTransport(LocalTransport(), schedule) if i < FAULTY
                else LocalTransport()
                for i in range(WORKERS)
            ]
        else:
            agents = [
                spawn_agent(
                    heartbeat_interval=HEARTBEAT_INTERVAL,
                    heartbeat_timeout=LIVENESS_TIMEOUT,
                )
                for _ in range(WORKERS)
            ]
            endpoints = [
                FaultyTransport(
                    TcpTransport(
                        host, port,
                        heartbeat_interval=HEARTBEAT_INTERVAL,
                        liveness_timeout=LIVENESS_TIMEOUT,
                    ),
                    schedule,
                )
                if i < FAULTY
                else TcpTransport(
                    host, port,
                    heartbeat_interval=HEARTBEAT_INTERVAL,
                    liveness_timeout=LIVENESS_TIMEOUT,
                )
                for i, (_, host, port) in enumerate(agents)
            ]
        started = time.monotonic()
        with MonitorService(saturate=False, endpoints=endpoints) as service:
            handles = {
                seed_: service.open_session(
                    SPEC, EPSILON, checkpoint=CHECKPOINT, call_policy=CALL_POLICY
                )
                for seed_ in range(SESSIONS)
            }
            results = _drive(handles)
            lost = [
                s for s in handles if results[s].verdict_counts != expected[s]
            ]
            assert not lost, (
                f"sessions {lost} diverged from the in-process replay"
            )
            deadline = time.monotonic() + DRAIN_SECONDS
            while any(service.outstanding()) and time.monotonic() < deadline:
                time.sleep(0.02)
            leftover = service.outstanding()
            assert not any(leftover), (
                f"outstanding counters leaked past {DRAIN_SECONDS}s: {leftover}"
            )
            stats = {
                "recoveries": sum(h.recoveries for h in handles.values()),
                "migrations": sum(h.migrations for h in handles.values()),
                "checkpoints": sum(h.checkpoints for h in handles.values()),
                "quarantined": sum(service.quarantined_endpoints()),
                "elapsed": round(time.monotonic() - started, 2),
            }
            for endpoint in endpoints:
                if isinstance(endpoint, FaultyTransport):
                    for key, value in endpoint.stats().items():
                        stats[key] = stats.get(key, 0) + value
            return stats
    finally:
        for popen, _, _ in agents:
            popen.kill()
            popen.wait(timeout=10)
            popen.stdout.close()


def run_registry_restart(seed: int) -> dict:
    """The control-plane cell: registry dies and respawns mid-workload.

    Agents register through the registry; the service discovers its pool
    via membership.  Mid-stream the registry process is SIGKILLed and
    respawned on the same port — the agents' single-flight redial loops
    and the service's watch redial must both re-converge, and the
    workload (running over direct agent connections the whole time) must
    finish with bit-identical verdicts.
    """
    from repro.cluster import RegistryClient, spawn_registry

    token = f"chaos-matrix-{seed}"
    expected = _reference_counts()
    registry_popen, rhost, rport = spawn_registry(token=token)
    spec = f"tcp://{rhost}:{rport}"
    agents = [
        spawn_agent(
            token=token,
            registry=spec,
            heartbeat_interval=HEARTBEAT_INTERVAL,
            heartbeat_timeout=LIVENESS_TIMEOUT,
        )
        for _ in range(WORKERS)
    ]
    try:
        started = time.monotonic()
        with MonitorService(saturate=False, registry=spec, token=token) as service:
            deadline = time.monotonic() + 10
            while service.workers < WORKERS and time.monotonic() < deadline:
                time.sleep(0.02)
            assert service.workers == WORKERS, (
                f"pool never reached {WORKERS} members: {service.endpoints()}"
            )
            handles = {
                s: service.open_session(
                    SPEC, EPSILON, checkpoint=CHECKPOINT, call_policy=CALL_POLICY
                )
                for s in range(SESSIONS)
            }
            # Kill the control plane mid-stream; respawn on the same port.
            registry_popen.kill()
            registry_popen.wait(timeout=10)
            registry_popen.stdout.close()
            # Tick 1 of the standard drive runs while the control plane
            # is down: the data plane must not care.
            for s, handle in handles.items():
                shift = (1 + s) % 3
                handle.observe("P1", 1, {"a"} if shift else {"a", "b"})
                if (1 + s) % 5 == 0:
                    handle.observe("P2", 1, {"b"} if (1 + s) % 10 == 0 else set())
            registry_popen, _, _ = spawn_registry(host=rhost, port=rport, token=token)
            # Every agent must re-register and the service must re-watch.
            deadline = time.monotonic() + 15
            members = []
            while time.monotonic() < deadline:
                try:
                    probe = RegistryClient.connect(spec, token=token)
                    try:
                        members = probe.members()
                    finally:
                        probe.close()
                except ReproError:
                    members = []
                if len(members) >= WORKERS:
                    break
                time.sleep(0.1)
            assert len(members) >= WORKERS, (
                f"agents never re-registered after the registry restart: "
                f"{[m.get('address') for m in members]}"
            )
            for t in range(2, TICKS + 1):
                for s, handle in handles.items():
                    shift = (t + s) % 3
                    handle.observe("P1", t, {"a"} if shift else {"a", "b"})
                    if (t + s) % 5 == 0:
                        handle.observe("P2", t, {"b"} if (t + s) % 10 == 0 else set())
                    if t % 6 == 0:
                        handle.advance_to(t)
            results = {s: handle.finish() for s, handle in handles.items()}
            lost = [
                s for s in handles
                if results[s].verdict_counts != expected[s]
            ]
            assert not lost, f"sessions {lost} diverged across the registry restart"
            return {
                "members": len(members),
                "elapsed": round(time.monotonic() - started, 2),
            }
    finally:
        for popen, _, _ in agents:
            popen.kill()
            popen.wait(timeout=10)
            popen.stdout.close()
        registry_popen.kill()
        registry_popen.wait(timeout=10)
        registry_popen.stdout.close()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--matrix", choices=("pr", "full"), default="pr")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--fault", choices=sorted(FAULTS), default=None,
                        help="run one fault class only")
    parser.add_argument("--transport", choices=TRANSPORTS, default=None,
                        help="run one transport only")
    parser.add_argument("--list", action="store_true", help="print the cells and exit")
    parser.add_argument("--artifact", metavar="PATH", default=None,
                        help="write the failing cell as JSON here")
    args = parser.parse_args(argv)

    cells = list(PR_LANE) if args.matrix == "pr" else full_lane()
    if args.fault or args.transport:
        cells = [
            (fault, transport)
            for fault, transport in (full_lane())
            if (args.fault is None or fault == args.fault)
            and (args.transport is None or transport == args.transport)
        ]
    registry_cell = args.matrix == "full" and not (args.fault or args.transport)
    if args.list:
        for fault, transport in cells:
            print(f"{fault}/{transport}")
        if registry_cell:
            print("registry-restart")
        return 0

    failures = 0
    for fault, transport in cells:
        schedule = build_schedule(fault, args.seed)
        label = f"{fault}/{transport}"
        try:
            stats = run_cell(fault, transport, args.seed)
        except BaseException as exc:  # noqa: BLE001 — report, then re-raise policy below
            failures += 1
            print(f"FAIL {label}: {exc}")
            print(f"  seed: {args.seed}")
            print(f"  schedule: {schedule.describe()}")
            print(
                f"  repro: PYTHONPATH=src python scripts/chaos_matrix.py "
                f"--fault {fault} --transport {transport} --seed {args.seed}"
            )
            if args.artifact:
                with open(args.artifact, "w") as fh:
                    json.dump(
                        {
                            "cell": label,
                            "seed": args.seed,
                            "schedule": FAULTS[fault],
                            "error": repr(exc),
                        },
                        fh,
                        indent=2,
                    )
            continue
        detail = ", ".join(
            f"{key}={value}" for key, value in stats.items() if value
        )
        print(f"ok   {label}: {detail or 'clean'}")
    if registry_cell:
        try:
            stats = run_registry_restart(args.seed)
        except BaseException as exc:  # noqa: BLE001
            failures += 1
            print(f"FAIL registry-restart: {exc}")
            print(f"  seed: {args.seed}")
        else:
            print(
                f"ok   registry-restart: members={stats['members']}, "
                f"elapsed={stats['elapsed']}s"
            )
    if failures:
        print(f"chaos matrix: {failures} cell(s) FAILED (seed {args.seed})")
        return 1
    print(f"chaos matrix ({args.matrix}, seed {args.seed}): all cells passed — "
          f"zero lost sessions, bit-identical verdicts (asserted)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
