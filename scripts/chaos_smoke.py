"""Chaos smoke: durable sessions survive worker-agent SIGKILLs.

Spawns a small fleet of TCP worker agents and runs rounds of a
checkpointed session workload while a killer timer SIGKILLs one agent
mid-stream each round, then respawns a replacement so the fleet stays
at full strength for the next round (a reaped endpoint stays dead for
the service that saw it die — the respawn models the host coming back
for *future* pools, exactly like a restarted machine rejoining a
cluster).

``--registry`` runs the same chaos through the elastic control plane:
a :class:`~repro.cluster.ClusterRegistry` is spun up, agents announce
themselves to it (token-authenticated), the service discovers its pool
via ``registry=`` instead of an endpoint list — and the respawned
replacement **rejoins the registry mid-round**, so the same service
that watched the victim die absorbs the replacement live and ends the
round back at full strength (the static mode's dead slot stays dead).

Asserted every round:

* **zero lost sessions** — every stream finishes with a verdict
  multiset bit-identical to an uninterrupted in-process
  :class:`~repro.monitor.online.OnlineMonitor` replay; no
  ``ServiceError`` ever reaches the caller;
* **recovery actually happened** — at least one session was restored
  off the killed endpoint (the kill wasn't a no-op);
* **settled books** — ``outstanding()`` drains to all-zeros (dead
  endpoints are force-zeroed by the reaper; live ones must drain).

Run standalone (CI chaos-smoke job)::

    PYTHONPATH=src python scripts/chaos_smoke.py
    PYTHONPATH=src python scripts/chaos_smoke.py --rounds 3 --kill-after 0.2
    PYTHONPATH=src python scripts/chaos_smoke.py --registry
"""

from __future__ import annotations

import argparse
import sys
import threading
import time

from repro.monitor.online import OnlineMonitor
from repro.mtl import parse
from repro.service import MonitorService
from repro.transport.agent import spawn_agent

SPEC = parse("a U[0,30) b")
EPSILON = 2
TICKS = 24
CHECKPOINT = {"every_events": 4}


def _drive(targets: dict[int, object], tick_seconds: float) -> dict[int, object]:
    """Feed every target one deterministic multi-segment stream, interleaved.

    ``targets`` maps a per-stream seed to anything with the
    online-monitor surface (an in-process reference monitor or a durable
    service session).  The second process is sparse so segment
    enumeration stays cheap — this smoke prices recovery, not traces.
    """
    for t in range(1, TICKS + 1):
        for seed, target in targets.items():
            shift = (t + seed) % 3
            target.observe("P1", t, {"a"} if shift else {"a", "b"})
            if (t + seed) % 5 == 0:
                target.observe("P2", t, {"b"} if (t + seed) % 10 == 0 else set())
            if t % 6 == 0:
                target.advance_to(t)
        if tick_seconds:
            time.sleep(tick_seconds)
    return {seed: target.finish() for seed, target in targets.items()}


def _reference_counts(sessions: int) -> dict[int, object]:
    monitors = {
        seed: OnlineMonitor(SPEC, epsilon=EPSILON) for seed in range(sessions)
    }
    results = _drive(monitors, tick_seconds=0.0)
    return {seed: result.verdict_counts for seed, result in results.items()}


def run_round(
    fleet: list,
    victim: int,
    sessions: int,
    kill_after: float,
    tick_seconds: float,
    registry: str | None = None,
    token: str | None = None,
) -> dict:
    """One chaos round over the current fleet; returns round stats.

    The killer timer SIGKILLs ``fleet[victim]`` mid-stream; the caller
    replaces it afterwards — except with ``registry``, where the
    replacement is respawned *inside* the round, announces itself to the
    registry, and must be absorbed live by the same service that watched
    the victim die.  Raises on any lost session or unsettled counter.
    """
    endpoints = [f"tcp://{host}:{port}" for _, host, port in fleet]
    expected = _reference_counts(sessions)
    if registry is not None:
        pool_kwargs = {"registry": registry, "token": token}
    else:
        pool_kwargs = {"endpoints": endpoints}
    with MonitorService(saturate=False, **pool_kwargs) as service:
        # With a registry the pool order is registration order, which can
        # lag a respawn; resolve the victim by address either way.
        victim_index = service.endpoints().index(endpoints[victim])
        handles = {
            seed: service.open_session(SPEC, EPSILON, checkpoint=CHECKPOINT)
            for seed in range(sessions)
        }
        placements = {seed: handles[seed].worker_index for seed in handles}
        exposed = [
            seed for seed, index in placements.items() if index == victim_index
        ]
        killer = threading.Timer(kill_after, fleet[victim][0].kill)
        killer.start()
        try:
            results = _drive(handles, tick_seconds)
        finally:
            killer.cancel()  # no-op once fired; stops an unfired timer on error
        lost = [
            seed
            for seed in handles
            if results[seed].verdict_counts != expected[seed]
        ]
        assert not lost, f"sessions {lost} diverged from the in-process replay"
        recoveries = sum(handles[seed].recoveries for seed in handles)
        assert recoveries >= len(exposed) >= 1, (
            f"kill was a no-op: {len(exposed)} session(s) on the victim, "
            f"{recoveries} recoveries"
        )
        deadline = time.monotonic() + 15
        while any(service.outstanding()) and time.monotonic() < deadline:
            time.sleep(0.02)
        leftover = service.outstanding()
        assert not any(leftover), f"outstanding counters leaked: {leftover}"
        rejoined = False
        if registry is not None:
            # The host comes back *through the registry*: the dead slot
            # stays a tombstone, but the join event must grow the same
            # service's pool back to full strength, live.
            dead_popen, _, _ = fleet[victim]
            dead_popen.wait(timeout=10)
            dead_popen.stdout.close()
            fleet[victim] = spawn_agent(token=token, registry=registry)
            deadline = time.monotonic() + 15
            while time.monotonic() < deadline:
                live = sum(1 for dead in service.dead_endpoints() if not dead)
                if live >= len(fleet):
                    rejoined = True
                    break
                time.sleep(0.05)
            assert rejoined, (
                f"respawned agent never rejoined the pool: "
                f"{service.endpoints()} / dead={service.dead_endpoints()}"
            )
    return {
        "sessions": sessions,
        "exposed": len(exposed),
        "recoveries": recoveries,
        "checkpoints": sum(handles[seed].checkpoints for seed in handles),
        "rejoined": rejoined,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--agents", type=int, default=3, help="fleet size")
    parser.add_argument("--sessions", type=int, default=4, help="streams per round")
    parser.add_argument("--rounds", type=int, default=2, help="chaos rounds")
    parser.add_argument(
        "--kill-after", type=float, default=0.25, metavar="SECONDS",
        help="killer timer: SIGKILL one agent this long into each round",
    )
    parser.add_argument(
        "--tick", type=float, default=0.03, metavar="SECONDS",
        help="pause per stream tick (stretches the round past the timer)",
    )
    parser.add_argument(
        "--registry", action="store_true",
        help="elastic mode: discover the fleet through a cluster registry "
        "(token-authenticated) and respawn killed agents through it, "
        "mid-round, into the same service's pool",
    )
    args = parser.parse_args(argv)
    if args.agents < 2:
        parser.error("--agents must be >= 2 (recovery needs a survivor)")

    registry_popen = None
    registry_spec = None
    token = None
    if args.registry:
        from repro.cluster import spawn_registry

        token = "chaos-smoke-token"
        registry_popen, rhost, rport = spawn_registry(token=token)
        registry_spec = f"tcp://{rhost}:{rport}"
    fleet = [
        spawn_agent(token=token, registry=registry_spec)
        for _ in range(args.agents)
    ]
    try:
        for round_index in range(args.rounds):
            victim = round_index % args.agents
            stats = run_round(
                fleet, victim, args.sessions, args.kill_after, args.tick,
                registry=registry_spec, token=token,
            )
            if registry_spec is None:
                dead, _, _ = fleet[victim]
                dead.wait(timeout=10)
                dead.stdout.close()
                fleet[victim] = spawn_agent()  # the host comes back
            rejoin_note = ", live rejoin through the registry" if stats["rejoined"] else ""
            print(
                f"round {round_index + 1}/{args.rounds}: killed agent {victim}, "
                f"{stats['exposed']}/{stats['sessions']} session(s) exposed, "
                f"{stats['recoveries']} recoveries, "
                f"{stats['checkpoints']} checkpoints, zero lost{rejoin_note}"
            )
    finally:
        for popen, _, _ in fleet:
            popen.kill()
            popen.wait(timeout=10)
            popen.stdout.close()
        if registry_popen is not None:
            registry_popen.kill()
            registry_popen.wait(timeout=10)
            registry_popen.stdout.close()
    mode = "registry" if args.registry else "static"
    print(
        f"chaos smoke ({mode}): {args.rounds} round(s), "
        f"zero lost sessions (asserted)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
