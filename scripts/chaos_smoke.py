"""Chaos smoke: durable sessions survive worker-agent SIGKILLs.

Spawns a small fleet of TCP worker agents and runs rounds of a
checkpointed session workload while a killer timer SIGKILLs one agent
mid-stream each round, then respawns a replacement so the fleet stays
at full strength for the next round (a reaped endpoint stays dead for
the service that saw it die — the respawn models the host coming back
for *future* pools, exactly like a restarted machine rejoining a
cluster).

Asserted every round:

* **zero lost sessions** — every stream finishes with a verdict
  multiset bit-identical to an uninterrupted in-process
  :class:`~repro.monitor.online.OnlineMonitor` replay; no
  ``ServiceError`` ever reaches the caller;
* **recovery actually happened** — at least one session was restored
  off the killed endpoint (the kill wasn't a no-op);
* **settled books** — ``outstanding()`` drains to all-zeros (dead
  endpoints are force-zeroed by the reaper; live ones must drain).

Run standalone (CI chaos-smoke job)::

    PYTHONPATH=src python scripts/chaos_smoke.py
    PYTHONPATH=src python scripts/chaos_smoke.py --rounds 3 --kill-after 0.2
"""

from __future__ import annotations

import argparse
import sys
import threading
import time

from repro.monitor.online import OnlineMonitor
from repro.mtl import parse
from repro.service import MonitorService
from repro.transport.agent import spawn_agent

SPEC = parse("a U[0,30) b")
EPSILON = 2
TICKS = 24
CHECKPOINT = {"every_events": 4}


def _drive(targets: dict[int, object], tick_seconds: float) -> dict[int, object]:
    """Feed every target one deterministic multi-segment stream, interleaved.

    ``targets`` maps a per-stream seed to anything with the
    online-monitor surface (an in-process reference monitor or a durable
    service session).  The second process is sparse so segment
    enumeration stays cheap — this smoke prices recovery, not traces.
    """
    for t in range(1, TICKS + 1):
        for seed, target in targets.items():
            shift = (t + seed) % 3
            target.observe("P1", t, {"a"} if shift else {"a", "b"})
            if (t + seed) % 5 == 0:
                target.observe("P2", t, {"b"} if (t + seed) % 10 == 0 else set())
            if t % 6 == 0:
                target.advance_to(t)
        if tick_seconds:
            time.sleep(tick_seconds)
    return {seed: target.finish() for seed, target in targets.items()}


def _reference_counts(sessions: int) -> dict[int, object]:
    monitors = {
        seed: OnlineMonitor(SPEC, epsilon=EPSILON) for seed in range(sessions)
    }
    results = _drive(monitors, tick_seconds=0.0)
    return {seed: result.verdict_counts for seed, result in results.items()}


def run_round(
    fleet: list, victim: int, sessions: int, kill_after: float, tick_seconds: float
) -> dict:
    """One chaos round over the current fleet; returns round stats.

    The killer timer SIGKILLs ``fleet[victim]`` mid-stream; the caller
    replaces it afterwards.  Raises on any lost session or unsettled
    counter.
    """
    endpoints = [f"tcp://{host}:{port}" for _, host, port in fleet]
    expected = _reference_counts(sessions)
    with MonitorService(endpoints=endpoints, saturate=False) as service:
        handles = {
            seed: service.open_session(SPEC, EPSILON, checkpoint=CHECKPOINT)
            for seed in range(sessions)
        }
        placements = {seed: handles[seed].worker_index for seed in handles}
        exposed = [seed for seed, index in placements.items() if index == victim]
        killer = threading.Timer(kill_after, fleet[victim][0].kill)
        killer.start()
        try:
            results = _drive(handles, tick_seconds)
        finally:
            killer.cancel()  # no-op once fired; stops an unfired timer on error
        lost = [
            seed
            for seed in handles
            if results[seed].verdict_counts != expected[seed]
        ]
        assert not lost, f"sessions {lost} diverged from the in-process replay"
        recoveries = sum(handles[seed].recoveries for seed in handles)
        assert recoveries >= len(exposed) >= 1, (
            f"kill was a no-op: {len(exposed)} session(s) on the victim, "
            f"{recoveries} recoveries"
        )
        deadline = time.monotonic() + 15
        while any(service.outstanding()) and time.monotonic() < deadline:
            time.sleep(0.02)
        leftover = service.outstanding()
        assert not any(leftover), f"outstanding counters leaked: {leftover}"
    return {
        "sessions": sessions,
        "exposed": len(exposed),
        "recoveries": recoveries,
        "checkpoints": sum(handles[seed].checkpoints for seed in handles),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--agents", type=int, default=3, help="fleet size")
    parser.add_argument("--sessions", type=int, default=4, help="streams per round")
    parser.add_argument("--rounds", type=int, default=2, help="chaos rounds")
    parser.add_argument(
        "--kill-after", type=float, default=0.25, metavar="SECONDS",
        help="killer timer: SIGKILL one agent this long into each round",
    )
    parser.add_argument(
        "--tick", type=float, default=0.03, metavar="SECONDS",
        help="pause per stream tick (stretches the round past the timer)",
    )
    args = parser.parse_args(argv)
    if args.agents < 2:
        parser.error("--agents must be >= 2 (recovery needs a survivor)")

    fleet = [spawn_agent() for _ in range(args.agents)]
    try:
        for round_index in range(args.rounds):
            victim = round_index % args.agents
            stats = run_round(
                fleet, victim, args.sessions, args.kill_after, args.tick
            )
            dead, _, _ = fleet[victim]
            dead.wait(timeout=10)
            dead.stdout.close()
            fleet[victim] = spawn_agent()  # the host comes back
            print(
                f"round {round_index + 1}/{args.rounds}: killed agent {victim}, "
                f"{stats['exposed']}/{stats['sessions']} session(s) exposed, "
                f"{stats['recoveries']} recoveries, "
                f"{stats['checkpoints']} checkpoints, zero lost"
            )
    finally:
        for popen, _, _ in fleet:
            popen.kill()
            popen.wait(timeout=10)
            popen.stdout.close()
    print(f"chaos smoke: {args.rounds} round(s), zero lost sessions (asserted)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
