#!/usr/bin/env python3
"""Run the cluster registry: the membership directory for elastic pools.

One registry serves a whole cluster.  Agents announce themselves to it
(``run_worker_agent.py --registry``), services subscribe to it
(``MonitorService(registry="tcp://host:port")``) and resize their pools
live as agents join, leave, and die::

    export REPRO_AGENT_TOKEN=...    # one shared secret = one cluster
    PYTHONPATH=src python scripts/run_registry.py --host 0.0.0.0 --port 7700

``--port 0`` binds an ephemeral port; the registry prints the bound
address on stdout once it is accepting connections and serves until
killed.  The registry holds no monitor state and routes no work — if it
goes down, running services keep serving on their current pools; only
membership *changes* stop propagating until it is back.  Thin wrapper
over ``python -m repro.cluster.registry``.
"""

from repro.cluster.registry import main

if __name__ == "__main__":
    raise SystemExit(main())
