#!/usr/bin/env python3
"""Measure the smt/fast crossover on this hardware and emit factory overrides.

CLI wrapper around :mod:`repro.monitor.calibration` (the measurement
logic lives in the library so ``MonitorService(auto_calibrate=True)``
can reuse it at startup).  Times both engines along event/epsilon
ladders, guards every point with a wall-clock budget, finds where the
segmented monitor starts winning, and writes a JSON report whose
``thresholds`` object the factory loads::

    PYTHONPATH=src python scripts/calibrate_factory.py --output calibration.json
    # then either
    REPRO_FACTORY_CALIBRATION=calibration.json python your_app.py
    # or, in code:
    from repro.monitor import load_calibration
    load_calibration("calibration.json")

The measured points ride along in the report for inspection.  Use
``--quick`` for a coarse (but fast) pass.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.monitor.calibration import run_calibration


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", help="write the JSON report here (default: stdout)")
    parser.add_argument("--repeats", type=int, default=2, help="timing repeats per point")
    parser.add_argument(
        "--budget", type=float, default=5.0, help="wall-clock budget per probe (s)"
    )
    parser.add_argument(
        "--quick", action="store_true", help="coarse ladders (fast sanity pass)"
    )
    args = parser.parse_args()

    report = run_calibration(
        quick=args.quick,
        repeats=args.repeats,
        budget=args.budget,
        log=lambda message: print(message, file=sys.stderr),
    )
    text = json.dumps(report, indent=2)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output}: thresholds={report['thresholds']}", file=sys.stderr)
    else:
        print(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
