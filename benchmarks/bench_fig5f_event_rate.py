"""Fig 5f — impact of the event rate.

Paper series: runtime against events/second/process for phi4/phi6 and
several process counts.  Expected shape: runtime grows quickly with the
rate (more events per segment), steeper for more processes.
"""

from __future__ import annotations

import pytest

from repro.bench.workload import formula_for, model_for_formula

from conftest import bench_monitor, cached_workload

EVENT_RATES = (5.0, 10.0, 15.0)
CASES = (("phi4", 1), ("phi4", 2), ("phi6", 1), ("phi6", 2))


@pytest.mark.parametrize("rate", EVENT_RATES)
@pytest.mark.parametrize("case", CASES, ids=lambda c: f"{c[0]}-P{c[1]}")
def bench_event_rate(benchmark, rate: float, case) -> None:
    formula_name, processes = case
    computation = cached_workload(
        model_for_formula(formula_name), processes, 1.0, rate, 15
    )
    formula = formula_for(formula_name, processes, 600)
    monitor = bench_monitor(formula, segments=8)
    result = benchmark.pedantic(monitor.run, args=(computation,), rounds=2, iterations=1)
    assert result.verdicts
    benchmark.extra_info["events"] = len(computation)
