"""Fig 5a — impact of the monitored formula.

Paper series: monitor runtime against the number of processes |P| for
each of phi1..phi6 (epsilon 15 ms, g 15, l 2 s, 10 events/s).  Expected
shape: runtime grows with |P|; formulas with more sub-formulas or deeper
temporal nesting (phi2, phi4, phi6) cost more than flat ones (phi3).
"""

from __future__ import annotations

import pytest

from repro.bench.workload import formula_for, model_for_formula

from conftest import bench_monitor, cached_workload

PROCESS_COUNTS = (1, 2, 3)
FORMULAS = ("phi1", "phi2", "phi3", "phi4", "phi5", "phi6")

#: Scaled-down defaults (paper: l=2 s, 10 ev/s, eps=15 ms, g=15).
LENGTH_SECONDS = 1.0
EVENT_RATE = 10.0
EPSILON_MS = 15
SEGMENTS = 8
WINDOW_MS = 600


@pytest.mark.parametrize("formula_name", FORMULAS)
@pytest.mark.parametrize("processes", PROCESS_COUNTS)
def bench_formula_impact(benchmark, formula_name: str, processes: int) -> None:
    computation = cached_workload(
        model_for_formula(formula_name),
        processes,
        LENGTH_SECONDS,
        EVENT_RATE,
        EPSILON_MS,
    )
    formula = formula_for(formula_name, processes, WINDOW_MS)
    monitor = bench_monitor(formula, segments=SEGMENTS)
    result = benchmark.pedantic(monitor.run, args=(computation,), rounds=2, iterations=1)
    assert result.verdicts
    benchmark.extra_info["verdicts"] = sorted(result.verdicts)
    benchmark.extra_info["events"] = len(computation)
