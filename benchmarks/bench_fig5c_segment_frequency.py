"""Fig 5c — impact of segment frequency.

Paper series: runtime against segments-per-second for phi4/phi6 and
several process counts.  Expected shape: runtime falls as segments get
shorter, then flattens/rises slightly once per-segment setup dominates
(the paper's knee near 0.6 1/s).
"""

from __future__ import annotations

import pytest

from repro.bench.workload import formula_for, model_for_formula
from repro.distributed.segmentation import segments_for_frequency

from conftest import bench_monitor, cached_workload

FREQUENCIES = (0.5, 1.0, 2.0, 4.0, 8.0)
CASES = (("phi4", 1), ("phi4", 2), ("phi6", 1), ("phi6", 2))


@pytest.mark.parametrize("frequency", FREQUENCIES)
@pytest.mark.parametrize("case", CASES, ids=lambda c: f"{c[0]}-P{c[1]}")
def bench_segment_frequency(benchmark, frequency: float, case) -> None:
    formula_name, processes = case
    computation = cached_workload(
        model_for_formula(formula_name), processes, 1.0, 10.0, 15
    )
    segments = segments_for_frequency(computation, frequency)
    formula = formula_for(formula_name, processes, 600)
    monitor = bench_monitor(formula, segments=segments)
    result = benchmark.pedantic(monitor.run, args=(computation,), rounds=2, iterations=1)
    assert result.verdicts
    benchmark.extra_info["segments"] = segments
