"""Fig 5d — impact of computation length.

Paper series: runtime against the computation length l (seconds) for
phi4/phi6 and several process counts, with segment *length* held constant
(more computation => proportionally more segments).  Expected shape:
runtime grows with l.
"""

from __future__ import annotations

import pytest

from repro.bench.workload import formula_for, model_for_formula

from conftest import bench_monitor, cached_workload

LENGTHS_SECONDS = (0.5, 1.0, 1.5, 2.0)
CASES = (("phi4", 2), ("phi6", 2))
SEGMENTS_PER_SECOND = 8


@pytest.mark.parametrize("length_seconds", LENGTHS_SECONDS)
@pytest.mark.parametrize("case", CASES, ids=lambda c: f"{c[0]}-P{c[1]}")
def bench_computation_length(benchmark, length_seconds: float, case) -> None:
    formula_name, processes = case
    computation = cached_workload(
        model_for_formula(formula_name), processes, length_seconds, 10.0, 15
    )
    segments = max(1, round(SEGMENTS_PER_SECOND * length_seconds))
    formula = formula_for(formula_name, processes, 600)
    monitor = bench_monitor(formula, segments=segments)
    result = benchmark.pedantic(monitor.run, args=(computation,), rounds=2, iterations=1)
    assert result.verdicts
    benchmark.extra_info["events"] = len(computation)
