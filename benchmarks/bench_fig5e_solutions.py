"""Fig 5e — impact of the number of truth values (solutions) per segment.

Paper setup: the SMT problem is re-solved with previous verdicts blocked
until k distinct verdicts are produced.  Expected shape: runtime grows
roughly *linearly* in k — each extra requested verdict costs another
sweep of comparable difficulty.

Our monitor expresses the same knob as ``max_distinct_per_segment``.
"""

from __future__ import annotations

import pytest

from repro.bench.workload import formula_for, model_for_formula
from repro.monitor.smt_monitor import SmtMonitor

from conftest import cached_workload

SOLUTION_COUNTS = (1, 2, 3, 4)
CASES = (("phi4", 2), ("phi6", 2))


@pytest.mark.parametrize("max_distinct", SOLUTION_COUNTS)
@pytest.mark.parametrize("case", CASES, ids=lambda c: f"{c[0]}-P{c[1]}")
def bench_solution_count(benchmark, max_distinct: int, case) -> None:
    formula_name, processes = case
    # A generous epsilon creates enough trace diversity that several
    # distinct residuals exist per segment.
    computation = cached_workload(
        model_for_formula(formula_name), processes, 1.0, 10.0, 35
    )
    formula = formula_for(formula_name, processes, 600)
    monitor = SmtMonitor(
        formula,
        segments=8,
        max_distinct_per_segment=max_distinct,
        max_traces_per_segment=400 * max_distinct,
        saturate=False,
    )
    result = benchmark.pedantic(monitor.run, args=(computation,), rounds=2, iterations=1)
    assert result.verdicts
    benchmark.extra_info["distinct"] = [
        r.distinct_residuals for r in result.segment_reports
    ]
