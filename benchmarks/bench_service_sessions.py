"""Service benchmark: session sweep + persistent-pool amortisation proof.

Two claims, both about the :class:`~repro.service.MonitorService` being a
*long-lived* server core rather than a per-call pool:

1. **Sessions × event-rate sweep** — S concurrent live streams, each
   feeding R events/second of logical time and advancing its frontier
   every ~2 events, multiplexed over one worker pool.  The sweep reports
   wall-clock and end-to-end event throughput per (S, R) point.

2. **Skewed feed with live rebalancing** (``--skew``) — 1 hot stream at
   10× the event rate of 15 cold ones, run with placement frozen at open
   time and again with the :class:`~repro.service.Rebalancer` migrating
   the hot stream live (plus one forced mid-stream hop).  The run
   *asserts* bit-identical verdict sets and all-zero outstanding
   counters — rebalancing is a scheduling lever, never a semantic one.

3. **Persistent vs fresh pool** — the same sequence of small batches run
   (a) through one persistent service and (b) through a fresh service
   per batch (the legacy ``ParallelMonitor.run_batch`` behaviour: spawn,
   monitor, tear down).  On repeated small batches the fork/teardown tax
   dominates the fresh path, so the persistent pool wins.  Matching the
   scaling-benchmark convention, the win is *asserted* only on >= 4-core
   non-CI hosts; elsewhere the numbers are printed for the record.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_service_sessions.py
    PYTHONPATH=src python benchmarks/bench_service_sessions.py --smoke --workers 2

or through pytest-benchmark (slow lane)::

    PYTHONPATH=src python -m pytest benchmarks/bench_service_sessions.py \
        -o python_files=bench_*.py -o python_functions=bench_* --benchmark-only
"""

from __future__ import annotations

import argparse
import os
import random
import time

import pytest

from repro.distributed.computation import DistributedComputation
from repro.mtl import parse
from repro.service import MonitorService

EPSILON = 2
#: Advance boundaries track the event rate so each closed segment holds
#: ~2 events regardless of rate (trace enumeration is exponential in
#: events-per-segment; the sweep measures multiplexing, not enumeration).
EVENTS_PER_ADVANCE = 2.0
MIN_ADVANCE_MS = 50
SESSION_SPEC = "a U[0,600) b"

#: (sessions, events-per-second) sweep grid for the full run.
SWEEP_GRID = ((8, 10.0), (32, 10.0), (32, 40.0), (64, 10.0))
SMOKE_GRID = ((8, 10.0),)

#: Persistent-vs-fresh comparison: repeated small batches.
BATCH_ROUNDS = 6
BATCH_SIZE = 4

#: Skewed-feed workload (--skew): 1 hot stream at 10× the event rate of
#: each of 15 cold ones, driven over every pool endpoint, with live
#: rebalancing on vs off — the verdicts must be bit-identical either way.
SKEW_COLD_STREAMS = 15
SKEW_HOT_MULTIPLIER = 10
SKEW_BASE_RATE = 5.0


def _stream_events(seed: int, rate: float, length_seconds: float):
    """Deterministic 2-process event stream: [(process, t_ms, props)]."""
    rng = random.Random(seed)
    period_ms = max(1, round(1000.0 / rate))
    events = []
    clocks = {"P1": rng.randrange(0, 3), "P2": rng.randrange(0, 3)}
    horizon = round(length_seconds * 1000)
    while min(clocks.values()) < horizon:
        process = rng.choice(("P1", "P2"))
        clocks[process] += period_ms + rng.randrange(0, 3)
        props = tuple(p for p in ("a", "b") if rng.random() < 0.4)
        events.append((process, clocks[process], props))
    # Observation order = timestamp order (stable: per-process clocks stay
    # monotone), so a windowed driver can feed strictly below each boundary.
    events.sort(key=lambda e: e[1])
    return events


def run_session_sweep_point(
    workers: int,
    sessions: int,
    rate: float,
    length_seconds: float,
    endpoints: list[str] | None = None,
    checkpoint: dict | None = None,
    call_policy=None,
) -> dict:
    """Drive ``sessions`` concurrent streams; return wall/throughput.

    ``endpoints`` swaps the local pool for explicit transport endpoints
    (e.g. ``["tcp://host:7701", ...]`` worker agents) — same workload,
    different wire.  ``checkpoint`` (a ``CheckpointConfig`` spec dict)
    makes every stream durable, so the sweep prices the checkpoint tax.
    ``call_policy`` (a :class:`~repro.retry.RetryPolicy`) arms the
    gray-failure fence on every stream — required under ``--faults``.
    """
    spec = parse(SESSION_SPEC)
    advance_ms = max(MIN_ADVANCE_MS, round(1000.0 * EVENTS_PER_ADVANCE / rate))
    streams = {
        seed: _stream_events(seed, rate, length_seconds) for seed in range(sessions)
    }
    total_events = sum(len(events) for events in streams.values())
    horizon = max((e[1] for events in streams.values() for e in events), default=0)
    pool = {"endpoints": endpoints} if endpoints else {"workers": workers}
    started = time.perf_counter()
    with MonitorService(**pool) as service:
        handles = {
            seed: service.open_session(
                spec,
                EPSILON,
                key=f"stream-{seed}",
                checkpoint=checkpoint,
                call_policy=call_policy,
            )
            for seed in streams
        }
        cursors = {seed: 0 for seed in streams}
        boundary = advance_ms
        while boundary <= horizon + advance_ms:
            for seed, events in streams.items():
                session = handles[seed]
                cursor = cursors[seed]
                while cursor < len(events) and events[cursor][1] < boundary:
                    process, t, props = events[cursor]
                    session.observe(process, t, props)
                    cursor += 1
                cursors[seed] = cursor
                session.advance_to(boundary)
            boundary += advance_ms
        results = {seed: handles[seed].finish() for seed in streams}
        checkpoints = sum(handles[seed].checkpoints for seed in streams)
        leftover = service.outstanding()
    wall = time.perf_counter() - started
    assert not any(leftover), f"outstanding counters leaked: {leftover}"
    verdict_sets = sorted(
        "".join("TF"[v is False] for v in sorted(r.verdicts, reverse=True))
        for r in results.values()
    )
    return {
        "sessions": sessions,
        "rate": rate,
        "events": total_events,
        "wall": wall,
        "events_per_second": total_events / wall if wall else float("inf"),
        "checkpoints": checkpoints,
        "verdict_sets": verdict_sets,
    }


def run_skewed_point(
    workers: int,
    length_seconds: float,
    endpoints: list[str] | None = None,
    rebalance: str | None = None,
    force_migration: bool = False,
) -> dict:
    """Drive the skewed mix (1 hot @ 10× + 15 cold); return wall/verdicts.

    ``rebalance`` turns the live :class:`~repro.service.Rebalancer` on;
    ``force_migration`` additionally hops the hot stream manually at the
    half-way boundary, so every run exercises at least one mid-stream
    migration regardless of policy timing.
    """
    spec = parse(SESSION_SPEC)
    hot_rate = SKEW_BASE_RATE * SKEW_HOT_MULTIPLIER
    advance_ms = max(MIN_ADVANCE_MS, round(1000.0 * EVENTS_PER_ADVANCE / hot_rate))
    streams = {0: _stream_events(0, hot_rate, length_seconds)}
    for seed in range(1, SKEW_COLD_STREAMS + 1):
        streams[seed] = _stream_events(seed, SKEW_BASE_RATE, length_seconds)
    total_events = sum(len(events) for events in streams.values())
    horizon = max((e[1] for events in streams.values() for e in events), default=0)
    pool = {"endpoints": endpoints} if endpoints else {"workers": workers}
    if rebalance:
        pool.update({"rebalance": rebalance, "rebalance_interval": 0.05})
    started = time.perf_counter()
    with MonitorService(**pool) as service:
        handles = {
            seed: service.open_session(spec, EPSILON) for seed in streams
        }
        cursors = {seed: 0 for seed in streams}
        forced = False
        boundary = advance_ms
        while boundary <= horizon + advance_ms:
            for seed, events in streams.items():
                session = handles[seed]
                cursor = cursors[seed]
                while cursor < len(events) and events[cursor][1] < boundary:
                    process, t, props = events[cursor]
                    session.observe(process, t, props)
                    cursor += 1
                cursors[seed] = cursor
                session.advance_to(boundary)
            if force_migration and not forced and boundary >= horizon // 2:
                hot = handles[0]
                live = [
                    index
                    for index, dead in enumerate(service.dead_endpoints())
                    if not dead and index != hot.worker_index
                ]
                if live:
                    service.migrate(hot, live[0])
                    forced = True
            boundary += advance_ms
        results = {seed: handles[seed].finish() for seed in streams}
        migrations = sum(handles[seed].migrations for seed in streams)
        leftover = service.outstanding()
    wall = time.perf_counter() - started
    assert not any(leftover), f"outstanding counters leaked: {leftover}"
    verdict_sets = sorted(
        "".join("TF"[v is False] for v in sorted(r.verdicts, reverse=True))
        for r in results.values()
    )
    return {
        "events": total_events,
        "wall": wall,
        "events_per_second": total_events / wall if wall else float("inf"),
        "migrations": migrations,
        "verdict_sets": verdict_sets,
    }


#: Lossy-link schedule for --faults: a few percent of frames dropped, a
#: small per-frame latency with jitter, and occasional 0.2 s stalls —
#: the "bad but not dead" link the quarantine/fence machinery degrades
#: gracefully on.  Deterministic: same seed, same faults.
FAULT_SEED = "bench-lossy-link"
FAULT_KNOBS = dict(
    drop=0.02,
    latency=0.001,
    jitter=0.002,
    delay=0.03,
    delay_seconds=0.2,
    grace=8,
)
#: Per-attempt fence timeout for --faults streams (generous: the stalls
#: are 0.2 s; the bound exists so a dropped frame is retried, not waited
#: on forever).
FAULT_CALL_TIMEOUT = 2.0


def run_faults_comparison(
    workers: int, sessions: int, rate: float, length_seconds: float
) -> dict:
    """The --faults claim: a lossy link costs throughput, never verdicts.

    Runs the identical sweep point twice — once on a clean local pool,
    once with every endpoint behind :class:`~repro.transport.
    FaultyTransport` on a seeded lossy-link schedule — and reports the
    degradation factor.  Asserts the verdict multisets are bit-identical
    (zero lost sessions, exactly-once under retries).
    """
    from repro.retry import RetryPolicy
    from repro.transport import FaultSchedule, FaultyTransport, LocalTransport

    clean = run_session_sweep_point(workers, sessions, rate, length_seconds)

    schedule = FaultSchedule(seed=FAULT_SEED, **FAULT_KNOBS)
    endpoints = [FaultyTransport(LocalTransport(), schedule) for _ in range(workers)]
    policy = RetryPolicy(attempts=4, timeout=FAULT_CALL_TIMEOUT, base_delay=0.05)
    faulty = run_session_sweep_point(
        workers,
        sessions,
        rate,
        length_seconds,
        endpoints=endpoints,
        checkpoint={"every_events": 8},
        call_policy=policy,
    )
    assert faulty["verdict_sets"] == clean["verdict_sets"], (
        "the lossy link changed the verdicts"
    )
    stats = {"sent": 0, "dropped": 0, "duplicated": 0}
    for endpoint in endpoints:
        for key in stats:
            stats[key] += endpoint.stats()[key]
    return {
        "schedule": schedule.describe(),
        "clean": clean,
        "faulty": faulty,
        "fault_stats": stats,
        "slowdown": clean["events_per_second"] / faulty["events_per_second"]
        if faulty["events_per_second"]
        else float("inf"),
    }


def run_skew_comparison(
    workers: int, length_seconds: float, endpoints: list[str] | None = None
) -> dict:
    """The --skew claim: rebalancing changes the schedule, never the verdicts."""
    frozen = run_skewed_point(workers, length_seconds, endpoints=endpoints)
    rebalanced = run_skewed_point(
        workers,
        length_seconds,
        endpoints=endpoints,
        rebalance="periodic",
        force_migration=True,
    )
    assert rebalanced["verdict_sets"] == frozen["verdict_sets"], (
        "rebalancing changed the verdicts"
    )
    assert rebalanced["migrations"] >= 1, "no migration ever happened"
    return {"frozen": frozen, "rebalanced": rebalanced}


def _batch(seed_base: int) -> list[DistributedComputation]:
    """A small batch of tiny computations (fork cost must dominate)."""
    comps = []
    for seed in range(BATCH_SIZE):
        rng = random.Random(seed_base * 100 + seed)
        comp = DistributedComputation(EPSILON)
        clocks = {"P1": 0, "P2": 1}
        for _ in range(6):
            process = rng.choice(("P1", "P2"))
            clocks[process] += rng.randrange(1, 4)
            props = tuple(p for p in ("a", "b") if rng.random() < 0.5)
            comp.add_event(process, clocks[process], props)
        comps.append(comp)
    return comps


def run_pool_comparison(
    workers: int, rounds: int = BATCH_ROUNDS, endpoints: list[str] | None = None
) -> dict:
    """Time ``rounds`` small batches: persistent pool vs fresh pool per call.

    With ``endpoints`` the fresh path re-opens the endpoint connections
    per batch (reconnect tax) instead of re-forking processes.
    """
    spec = parse("F[0,8) b")
    batches = [_batch(index) for index in range(rounds)]
    pool = {"endpoints": endpoints} if endpoints else {"workers": workers}

    started = time.perf_counter()
    with MonitorService(formula=spec, saturate=False, **pool) as service:
        persistent_reports = [service.map(batch) for batch in batches]
    persistent_wall = time.perf_counter() - started

    started = time.perf_counter()
    fresh_reports = []
    for batch in batches:
        with MonitorService(formula=spec, saturate=False, **pool) as service:
            fresh_reports.append(service.map(batch))
    fresh_wall = time.perf_counter() - started

    persistent_totals = [r.verdict_totals for r in persistent_reports]
    fresh_totals = [r.verdict_totals for r in fresh_reports]
    assert persistent_totals == fresh_totals, "pool reuse changed the verdicts"
    assert not any(r.errors for r in persistent_reports + fresh_reports)
    return {
        "workers": workers,
        "rounds": rounds,
        "persistent_wall": persistent_wall,
        "fresh_wall": fresh_wall,
        "speedup": fresh_wall / persistent_wall if persistent_wall else float("inf"),
    }


# -- pytest-benchmark lane ----------------------------------------------------------


@pytest.mark.slow
@pytest.mark.parametrize("sessions", [8, 32])
def bench_service_sessions(benchmark, sessions: int) -> None:
    point = benchmark.pedantic(
        run_session_sweep_point, args=(2, sessions, 10.0, 0.6), rounds=1, iterations=1
    )
    assert point["events"] > 0
    assert point["verdict_sets"]
    benchmark.extra_info["sessions"] = sessions
    benchmark.extra_info["events_per_second"] = round(point["events_per_second"], 1)


@pytest.mark.slow
def bench_persistent_vs_fresh_pool(benchmark) -> None:
    comparison = benchmark.pedantic(
        run_pool_comparison, args=(2,), kwargs={"rounds": 3}, rounds=1, iterations=1
    )
    benchmark.extra_info["speedup"] = round(comparison["speedup"], 2)


# -- standalone entry point ---------------------------------------------------------


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small workload (CI: exercises pool startup/shutdown quickly)",
    )
    parser.add_argument(
        "--skew", action="store_true",
        help="skewed-feed workload (1 hot stream @ 10x vs 15 cold) with live "
        "rebalancing on vs off; asserts bit-identical verdicts",
    )
    parser.add_argument(
        "--faults", action="store_true",
        help="rerun the sweep point behind a seeded lossy-link fault "
        "schedule and report the throughput degradation; asserts "
        "bit-identical verdicts (the graceful-degradation number)",
    )
    parser.add_argument("--workers", type=int, default=None, help="pool size")
    parser.add_argument(
        "--checkpoint", type=int, default=None, metavar="N",
        help="open every sweep session with checkpointing every N flushed "
        "events — the sweep then prices the durability tax",
    )
    parser.add_argument(
        "--endpoint", action="append", default=None, metavar="SPEC",
        help="worker endpoint ('tcp://host:port' or 'local'); repeatable — "
        "replaces the local pool for the session sweep",
    )
    args = parser.parse_args()

    cores = os.cpu_count() or 1
    workers = len(args.endpoint) if args.endpoint else (args.workers or min(4, cores))
    grid = SMOKE_GRID if args.smoke else SWEEP_GRID
    length = 0.6 if args.smoke else 2.0
    rounds = 3 if args.smoke else BATCH_ROUNDS

    pool_text = ", ".join(args.endpoint) if args.endpoint else f"{workers} local"
    print(f"cpu cores: {cores}, workers: {pool_text}")

    if args.faults:
        sessions, rate = (SMOKE_GRID if args.smoke else SWEEP_GRID)[0]
        print(f"\nlossy-link degradation ({sessions} sessions @ {rate:.0f} ev/s):")
        comparison = run_faults_comparison(workers, sessions, rate, length)
        print(f"  schedule: {comparison['schedule']}")
        for label in ("clean", "faulty"):
            point = comparison[label]
            print(
                f"  {label:>7}: {point['events']:>6} events  "
                f"wall {point['wall']:.3f}s  "
                f"{point['events_per_second']:>7.0f} ev/s"
            )
        stats = comparison["fault_stats"]
        print(
            f"  link: {stats['sent']} frames sent, {stats['dropped']} dropped, "
            f"{stats['duplicated']} duplicated"
        )
        print(f"  slowdown under faults: {comparison['slowdown']:.2f}x")
        print("  verdicts bit-identical under faults: ok (asserted)")
        return 0

    if args.skew:
        print(
            f"\nskewed feed (1 hot @ {SKEW_HOT_MULTIPLIER}x + {SKEW_COLD_STREAMS} "
            f"cold, rebalancing off vs on):"
        )
        comparison = run_skew_comparison(workers, length, endpoints=args.endpoint)
        for label in ("frozen", "rebalanced"):
            point = comparison[label]
            print(
                f"  {label:>10}: {point['events']:>6} events  "
                f"wall {point['wall']:.3f}s  {point['events_per_second']:>7.0f} ev/s  "
                f"{point['migrations']} migration(s)"
            )
        print("  verdicts bit-identical with rebalancing: ok (asserted)")
        return 0

    checkpoint = {"every_events": args.checkpoint} if args.checkpoint else None
    durability = (
        f", checkpoint every {args.checkpoint} events" if args.checkpoint else ""
    )
    print(
        f"\nsession sweep (~{EVENTS_PER_ADVANCE:.0f} events per advance, "
        f"epsilon {EPSILON} ms{durability}):"
    )
    print(
        f"{'sessions':>9} {'rate(ev/s)':>11} {'events':>8} {'wall(s)':>9} "
        f"{'ev/s':>9} {'ckpts':>6}"
    )
    for sessions, rate in grid:
        point = run_session_sweep_point(
            workers, sessions, rate, length,
            endpoints=args.endpoint, checkpoint=checkpoint,
        )
        print(
            f"{point['sessions']:>9} {point['rate']:>11.0f} {point['events']:>8} "
            f"{point['wall']:>9.3f} {point['events_per_second']:>9.0f} "
            f"{point['checkpoints']:>6}"
        )

    print(f"\npersistent vs fresh pool ({rounds} batches of {BATCH_SIZE} items):")
    comparison = run_pool_comparison(workers, rounds=rounds, endpoints=args.endpoint)
    print(
        f"  persistent {comparison['persistent_wall']:.3f}s | "
        f"fresh {comparison['fresh_wall']:.3f}s | "
        f"speedup {comparison['speedup']:.2f}x"
    )
    # Wall-clock assertions only hold on dedicated multi-core hardware;
    # shared CI runners (CI=true) and small containers get the numbers
    # without the hard gate.
    # (With explicit endpoints the fresh path pays a reconnect, not a
    # fork — much cheaper, so the win is reported but not asserted.)
    if cores >= 4 and not os.environ.get("CI") and not args.endpoint:
        assert comparison["speedup"] > 1.0, (
            "persistent pool should beat fresh-pool-per-call on repeated "
            f"small batches, measured {comparison['speedup']:.2f}x"
        )
        print("  persistent pool beats fresh pools: ok (asserted)")
    else:
        print(
            f"  (not asserted: {cores} core(s), CI={bool(os.environ.get('CI'))}, "
            f"endpoints={bool(args.endpoint)})"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
