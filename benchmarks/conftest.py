"""Shared fixtures for the figure-reproduction benchmarks.

Every benchmark regenerates one of the paper's figures (see DESIGN.md's
experiment index).  Workload generation happens outside the timed region;
the timed region is exactly the monitoring algorithm, matching the
paper's measurement ("the runtime of the actual SMT encoding ... the most
dominating aspect").

Parameters are scaled down from the paper's 112-vcore testbed so the full
suite completes in minutes; the *shape* of each series is what the
reproduction asserts (EXPERIMENTS.md records shapes side by side).
"""

from __future__ import annotations

from functools import lru_cache

import pytest

from repro.bench.workload import WorkloadSpec, formula_for, generate_workload
from repro.chain.log import computation_from_chains
from repro.distributed.computation import DistributedComputation
from repro.monitor import Monitor, make_monitor
from repro.mtl.ast import Formula

#: Enumeration budget per segment — keeps worst-case points bounded while
#: leaving the relative scaling intact (every point uses the same budget).
TRACE_BUDGET = 400

#: The paper's per-segment verdict budget (Fig 5e sweeps 1..4).
VERDICT_CAP = 4


def bench_monitor_kwargs(**overrides) -> dict:
    """The benchmark suite's standard monitor knobs, with overrides."""
    kwargs = {
        "max_traces_per_segment": TRACE_BUDGET,
        "max_distinct_per_segment": VERDICT_CAP,
    }
    kwargs.update(overrides)
    return kwargs


def bench_monitor(formula: Formula, **overrides) -> Monitor:
    """Build the segmented monitor every figure benchmark times.

    Goes through :func:`repro.monitor.make_monitor` so benchmarks follow
    the same construction surface as production callers.
    """
    return make_monitor(formula, "smt", **bench_monitor_kwargs(**overrides))


@lru_cache(maxsize=None)
def cached_workload(
    model: str,
    processes: int,
    length_seconds: float,
    events_per_second: float,
    epsilon_ms: int,
    seed: int = 0,
) -> DistributedComputation:
    """Workload generation cache shared across benchmark rounds."""
    return generate_workload(
        WorkloadSpec(
            model=model,
            processes=processes,
            length_seconds=length_seconds,
            events_per_second=events_per_second,
            epsilon_ms=epsilon_ms,
            seed=seed,
        )
    )


@lru_cache(maxsize=None)
def cached_swap2_computation(behavior_key: tuple[int, ...], epsilon_ms: int, delta_ms: int):
    from repro.protocols.swap2 import run_swap2

    setup = run_swap2(list(behavior_key), epsilon_ms=epsilon_ms, delta_ms=delta_ms)
    return computation_from_chains([setup.apricot, setup.banana], epsilon_ms)


@lru_cache(maxsize=None)
def cached_swap3_computation(behavior_key: tuple[int, ...], epsilon_ms: int, delta_ms: int):
    from repro.protocols.swap3 import run_swap3

    setup = run_swap3(list(behavior_key), epsilon_ms=epsilon_ms, delta_ms=delta_ms)
    return computation_from_chains(setup.chains.values(), epsilon_ms)


@pytest.fixture
def trace_budget() -> int:
    return TRACE_BUDGET
