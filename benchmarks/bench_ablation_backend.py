"""Ablation — DFS fast path vs the paper-literal CSP cut encoding.

Both backends enumerate the same trace set (asserted in the test suite);
this benchmark quantifies the cost of the declarative encoding, i.e. what
the interleaved search order buys.
"""

from __future__ import annotations

import pytest

from repro.bench.workload import formula_for
from repro.monitor.smt_monitor import SmtMonitor

from conftest import cached_workload

BACKENDS = ("dfs", "csp")


@pytest.mark.parametrize("backend", BACKENDS)
def bench_backend(benchmark, backend: str) -> None:
    computation = cached_workload("fischer", 2, 0.8, 10.0, 15)
    formula = formula_for("phi4", 2, 600)
    monitor = SmtMonitor(
        formula,
        segments=8,
        max_traces_per_segment=150,
        backend=backend,
    )
    result = benchmark.pedantic(monitor.run, args=(computation,), rounds=2, iterations=1)
    assert result.verdicts


@pytest.mark.parametrize("backend", BACKENDS)
def bench_backend_small_exhaustive(benchmark, backend: str) -> None:
    """Exhaustive comparison on a small computation (no budget cap)."""
    computation = cached_workload("fischer", 2, 0.3, 10.0, 10)
    formula = formula_for("phi3", 2)
    monitor = SmtMonitor(formula, segments=4, backend=backend, saturate=False)
    result = benchmark.pedantic(monitor.run, args=(computation,), rounds=2, iterations=1)
    assert result.verdicts
