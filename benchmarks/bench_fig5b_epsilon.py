"""Fig 5b — impact of the clock-synchronization constant epsilon.

Paper series: runtime against epsilon for several segment counts g.
Expected shape: runtime grows (super-linearly) with epsilon — each extra
millisecond of admissible skew widens every event's timestamp window and
adds concurrent orderings; longer segments (smaller g) grow faster.
"""

from __future__ import annotations

import pytest

from repro.bench.workload import formula_for

from conftest import bench_monitor, cached_workload

EPSILONS_MS = (5, 15, 25, 35)
SEGMENT_COUNTS = (8, 15)


@pytest.mark.parametrize("epsilon_ms", EPSILONS_MS)
@pytest.mark.parametrize("segments", SEGMENT_COUNTS)
def bench_epsilon_impact(benchmark, epsilon_ms: int, segments: int) -> None:
    computation = cached_workload("fischer", 2, 1.0, 10.0, epsilon_ms)
    formula = formula_for("phi4", 2, 600)
    monitor = bench_monitor(formula, segments=segments)
    result = benchmark.pedantic(monitor.run, args=(computation,), rounds=2, iterations=1)
    assert result.verdicts
    benchmark.extra_info["traces"] = sum(
        r.traces_enumerated for r in result.segment_reports
    )
