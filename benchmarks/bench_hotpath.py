"""Hot-path perf-regression harness (the monitor's enumerate→progress→carry loop).

Four metrics, each timing one layer of the hot path:

* ``carried_serial`` — the carried-residual-heavy reference workload: a
  fischer computation whose phi4 instantiation fans out into thousands of
  distinct carried residuals across six segments, run through the plain
  serial :class:`~repro.monitor.smt_monitor.SmtMonitor`.  This is the
  workload the formula-interning work is measured on.
* ``segment_parallel`` — the same workload through the segment-parallel
  ``ParallelMonitor.run`` path (serial prefix + shard fan-out), with the
  verdict multiset asserted bit-identical to the serial run.
* ``shard_split`` — the ``_shard_residuals`` split of the captured
  carried set (the client-side cost paid at every fan-out).
* ``observe_wire`` — encode+decode of ``session_observe`` batches through
  the transport frame codec (the per-event session hot path), plus a
  ``session_service`` end-to-end feed through a one-worker
  :class:`~repro.service.MonitorService` session asserted bit-identical
  to the in-process :class:`~repro.monitor.online.OnlineMonitor`.
* ``intra_segment`` — an enumeration-bound single-segment computation
  through ``ParallelMonitor(intra_segment_parts=...)`` vs the serial
  engine, verdict multisets asserted bit-identical; the in-run speedup
  is gated only on >= 4-core hosts (report-only on small CI runners).
* ``preempt_latency`` — cancel a running ``SmtMonitor.run`` via its
  :class:`~repro.progression.budget.Budget` and time cancel-to-unwind
  (the one-checkpoint-interval promise, as a smoke number).

Regression guard: ``--baseline`` writes ``BENCH_hotpath.json``;
``--check BENCH_hotpath.json`` re-runs the suite and fails when any
metric regresses beyond ``--tolerance`` (default 25%) against the
committed numbers.  Times are normalised by a fixed pure-Python
machine-score probe so the committed baseline transfers across hosts of
different speeds; the band absorbs the residual noise.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py            # full run
    PYTHONPATH=src python benchmarks/bench_hotpath.py --smoke --baseline
    PYTHONPATH=src python benchmarks/bench_hotpath.py --smoke --check BENCH_hotpath.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.workload import WorkloadSpec, formula_for, generate_workload
from repro.monitor.online import OnlineMonitor
from repro.monitor.smt_monitor import SmtMonitor
from repro.parallel import ParallelMonitor
from repro.service import MonitorService
from repro.transport.frames import Request, decode_frame, encode_frame

SCHEMA = 2

#: The ``carried_columnar`` metric must show the columnar kernel at least
#: this much faster than the object path *measured in the same run* — a
#: relative gate, so it holds on any host speed.
MIN_COLUMNAR_SPEEDUP = 1.3

#: In-run partitioned-vs-serial speedup the ``intra_segment`` metric must
#: show — but only on hosts with enough cores for the claim to be
#: meaningful; below that the number is reported, not gated.
MIN_INTRA_SEGMENT_SPEEDUP = 1.15
INTRA_SEGMENT_GATE_CORES = 4

#: The carried-residual-heavy reference workload (full / smoke budgets).
WORKLOAD = WorkloadSpec(
    model="fischer", processes=3, length_seconds=2.0, events_per_second=10.0, epsilon_ms=15
)
PHI = "phi4"
WINDOW_MS = 400
SEGMENTS = 6
TRACE_BUDGET = {"full": 100, "smoke": 60}
WIRE_BATCHES = {"full": 400, "smoke": 120}
WIRE_BATCH_EVENTS = 256
SESSION_EVENTS = {"full": 1200, "smoke": 400}


def machine_score() -> float:
    """Seconds for a fixed pure-Python workload (host-speed normaliser)."""
    best = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        x = 0
        for i in range(1_500_000):
            x = (x * 1103515245 + i) & 0xFFFFFFFF
        best = min(best, time.perf_counter() - started)
    return best


def _timed(fn):
    started = time.perf_counter()
    value = fn()
    return time.perf_counter() - started, value


# -- metrics -----------------------------------------------------------------------


def bench_carried(mode: str) -> dict:
    computation = generate_workload(WORKLOAD)
    formula = formula_for(PHI, WORKLOAD.processes, window_ms=WINDOW_MS)
    engine = SmtMonitor(
        formula,
        segments=SEGMENTS,
        saturate=False,
        max_traces_per_segment=TRACE_BUDGET[mode],
    )
    seconds, result = _timed(lambda: engine.run(computation))
    peak = max(r.distinct_residuals for r in result.segment_reports)
    return {
        "seconds": seconds,
        "verdict_counts": {str(k): v for k, v in sorted(result.verdict_counts.items())},
        "peak_distinct_residuals": peak,
    }


def bench_carried_columnar(mode: str) -> dict:
    """The carried workload under both progression engines, same process.

    Times the legacy object walk (``REPRO_COLUMNAR=0``) and the columnar
    kernel on the identical computation/formula, asserts bit-identical
    verdict multisets, and reports the in-run speedup.  ``seconds`` is
    the columnar time (so the absolute baseline tracks the shipping
    path); the relative gate in ``check_against`` uses ``speedup``.
    """
    computation = generate_workload(WORKLOAD)
    formula = formula_for(PHI, WORKLOAD.processes, window_ms=WINDOW_MS)

    def run_once() -> tuple[float, dict]:
        engine = SmtMonitor(
            formula,
            segments=SEGMENTS,
            saturate=False,
            max_traces_per_segment=TRACE_BUDGET[mode],
        )
        seconds, result = _timed(lambda: engine.run(computation))
        return seconds, {str(k): v for k, v in sorted(result.verdict_counts.items())}

    previous = os.environ.get("REPRO_COLUMNAR")
    try:
        os.environ["REPRO_COLUMNAR"] = "0"
        object_seconds, object_counts = run_once()
        os.environ["REPRO_COLUMNAR"] = "1"
        columnar_seconds, columnar_counts = run_once()
    finally:
        if previous is None:
            os.environ.pop("REPRO_COLUMNAR", None)
        else:
            os.environ["REPRO_COLUMNAR"] = previous
    if columnar_counts != object_counts:
        raise SystemExit(
            f"columnar verdicts {columnar_counts} diverge from object path "
            f"{object_counts}"
        )
    return {
        "seconds": columnar_seconds,
        "object_seconds": object_seconds,
        "speedup": object_seconds / columnar_seconds,
        "verdict_counts": columnar_counts,
    }


def bench_segment_parallel(mode: str, serial_counts: dict) -> dict:
    computation = generate_workload(WORKLOAD)
    formula = formula_for(PHI, WORKLOAD.processes, window_ms=WINDOW_MS)
    parallel = ParallelMonitor(
        formula,
        workers=2,
        segments=SEGMENTS,
        saturate=False,
        max_traces_per_segment=TRACE_BUDGET[mode],
    )
    seconds, result = _timed(lambda: parallel.run(computation))
    counts = {str(k): v for k, v in sorted(result.verdict_counts.items())}
    if counts != serial_counts:
        raise SystemExit(
            f"segment-parallel verdicts {counts} diverge from serial {serial_counts}"
        )
    return {"seconds": seconds, "verdict_counts": counts}


def bench_shard_split(mode: str) -> dict:
    """Split the captured heavy carried set the way ``run`` would."""
    computation = generate_workload(WORKLOAD)
    formula = formula_for(PHI, WORKLOAD.processes, window_ms=WINDOW_MS)
    engine = SmtMonitor(
        formula,
        segments=SEGMENTS,
        saturate=False,
        max_traces_per_segment=TRACE_BUDGET[mode],
    )
    from repro.monitor.verdicts import MonitorResult

    hb = computation.happened_before()
    segments = engine.segments_of(computation)
    state = engine.initial_state()
    sink = MonitorResult(formula)
    heaviest: dict = dict(state.carried)
    for order in range(len(segments)):
        state = engine.step(hb, segments, order, state, sink, computation.epsilon)
        if len(state.carried) > len(heaviest):
            heaviest = dict(state.carried)
    parallel = ParallelMonitor(formula, workers=4)
    rounds = 5 if mode == "smoke" else 20
    started = time.perf_counter()
    for _ in range(rounds):
        shards = parallel._shard_residuals(heaviest)
    seconds = (time.perf_counter() - started) / rounds
    assert sum(len(s) for s in shards) == len(heaviest)
    return {"seconds": seconds, "residuals": len(heaviest)}


def _wire_events(count: int, base: int = 0) -> list:
    events = []
    for i in range(count):
        props = frozenset(("alpha.request", "alpha.grant") if i % 3 else ("alpha.request",))
        deltas = {"paid": float(i % 7)} if i % 5 == 0 else None
        events.append((f"proc{i % 8}", base + i, props, deltas))
    return events


def bench_observe_wire(mode: str) -> dict:
    batches = WIRE_BATCHES[mode]
    events = _wire_events(WIRE_BATCH_EVENTS)
    started = time.perf_counter()
    for i in range(batches):
        frame = encode_frame(Request(i, "session_observe", (7, events)))
        request = decode_frame(frame)
    seconds = time.perf_counter() - started
    assert request.payload[1] == events
    total = batches * WIRE_BATCH_EVENTS
    return {
        "seconds": seconds,
        "events": total,
        "events_per_second": total / seconds,
        "frame_bytes": len(frame),
    }


def _session_feed(feed) -> None:
    """Feed the synthetic session stream into an observe/advance surface."""
    count = feed.events
    for i in range(count):
        props = ("req",) if i % 4 else ("ack",)
        feed.monitor.observe(f"p{i % 3}", i, props)
        if i and i % 4 == 0:
            # ~4 events per closed segment: enumeration is exponential in
            # events-per-segment, and this metric measures the wire+session
            # machinery, not trace enumeration.
            feed.monitor.advance_to(i)


class _Feed:
    def __init__(self, monitor, events):
        self.monitor = monitor
        self.events = events


def bench_session_service(mode: str) -> dict:
    from repro.mtl.ast import atom, eventually, implies, always
    from repro.mtl.interval import Interval

    spec = always(implies(atom("req"), eventually(atom("ack"), Interval.bounded(0, 30))))
    count = SESSION_EVENTS[mode]

    reference = OnlineMonitor(spec, epsilon=2)
    _session_feed(_Feed(reference, count))
    expected = reference.finish().verdict_counts

    with MonitorService(workers=1) as service:
        session = service.open_session(spec, epsilon=2)
        seconds, _ = _timed(lambda: _session_feed(_Feed(session, count)))
        result = session.finish()
    if result.verdict_counts != expected:
        raise SystemExit(
            f"service session verdicts {dict(result.verdict_counts)} diverge "
            f"from in-process {dict(expected)}"
        )
    return {"seconds": seconds, "events": count}


def _intra_workload(mode: str):
    """A dense single-segment computation: enumeration-bound, exhaustive
    (no truncation — per-part trace budgets would truncate at different
    points than serial and break the bit-identical assertion)."""
    from repro.distributed.computation import DistributedComputation
    from repro.mtl import parse

    per_process = {"full": 6, "smoke": 5}[mode]
    computation = DistributedComputation.from_event_lists(
        1,
        {
            "P1": [(i, "a" if i % 2 else ()) for i in range(per_process)],
            "P2": [(i, "b" if i % 3 else ()) for i in range(per_process)],
            "P3": [(i, ()) for i in range(per_process)],
        },
    )
    return computation, parse("G[0,40) (a -> F[0,5) b)")


def bench_intra_segment(mode: str) -> dict:
    """Partitioned enumeration vs serial on the same run, bit-identical."""
    computation, formula = _intra_workload(mode)
    engine = SmtMonitor(formula, saturate=False, max_traces_per_segment=None)
    serial_seconds, serial_result = _timed(lambda: engine.run(computation))
    parallel = ParallelMonitor(
        formula,
        workers=2,
        saturate=False,
        max_traces_per_segment=None,
        intra_segment_parts=2,
    )
    seconds, result = _timed(lambda: parallel.run(computation))
    serial_counts = {str(k): v for k, v in sorted(serial_result.verdict_counts.items())}
    counts = {str(k): v for k, v in sorted(result.verdict_counts.items())}
    if counts != serial_counts:
        raise SystemExit(
            f"intra-segment verdicts {counts} diverge from serial {serial_counts}"
        )
    return {
        "seconds": seconds,
        "serial_seconds": serial_seconds,
        "speedup": serial_seconds / seconds,
        "verdict_counts": counts,
    }


def bench_preempt_latency(mode: str) -> dict:
    """Cancel a running enumeration; time cancel() -> PreemptedError."""
    import threading

    from repro.errors import PreemptedError
    from repro.progression.budget import Budget

    computation, formula = _intra_workload("full")  # big enough to outlive the cancel
    engine = SmtMonitor(formula, saturate=False, max_traces_per_segment=None)
    budget = Budget()
    unwound: dict = {}

    def run() -> None:
        try:
            engine.run(computation, budget=budget)
            unwound["completed"] = True
        except PreemptedError:
            unwound["at"] = time.perf_counter()

    thread = threading.Thread(target=run)
    thread.start()
    time.sleep(0.2)  # let the DFS get deep into the segment
    cancelled_at = time.perf_counter()
    budget.cancel("bench preemption smoke")
    thread.join(timeout=60)
    if unwound.get("completed") or "at" not in unwound:
        raise SystemExit(
            "preemption smoke never preempted - enlarge the workload"
        )
    return {"seconds": unwound["at"] - cancelled_at}


# -- harness -----------------------------------------------------------------------


def run_suite(mode: str) -> dict:
    print(f"machine-score probe ...", flush=True)
    score = machine_score()
    print(f"  score={score * 1000:.1f} ms")
    metrics: dict = {}
    print("carried_serial ...", flush=True)
    metrics["carried_serial"] = bench_carried(mode)
    print(f"  {metrics['carried_serial']['seconds']:.3f}s "
          f"(peak {metrics['carried_serial']['peak_distinct_residuals']} residuals)")
    print("carried_columnar ...", flush=True)
    metrics["carried_columnar"] = bench_carried_columnar(mode)
    print(f"  {metrics['carried_columnar']['seconds']:.3f}s columnar vs "
          f"{metrics['carried_columnar']['object_seconds']:.3f}s object "
          f"({metrics['carried_columnar']['speedup']:.2f}x, verdicts bit-identical)")
    print("segment_parallel ...", flush=True)
    metrics["segment_parallel"] = bench_segment_parallel(
        mode, metrics["carried_serial"]["verdict_counts"]
    )
    print(f"  {metrics['segment_parallel']['seconds']:.3f}s (verdicts bit-identical)")
    print("shard_split ...", flush=True)
    metrics["shard_split"] = bench_shard_split(mode)
    print(f"  {metrics['shard_split']['seconds'] * 1000:.2f} ms/split "
          f"({metrics['shard_split']['residuals']} residuals)")
    print("observe_wire ...", flush=True)
    metrics["observe_wire"] = bench_observe_wire(mode)
    print(f"  {metrics['observe_wire']['events_per_second']:,.0f} events/s "
          f"({metrics['observe_wire']['frame_bytes']} B/frame)")
    print("session_service ...", flush=True)
    metrics["session_service"] = bench_session_service(mode)
    print(f"  {metrics['session_service']['seconds']:.3f}s "
          f"({metrics['session_service']['events']} events, verdicts bit-identical)")
    print("intra_segment ...", flush=True)
    metrics["intra_segment"] = bench_intra_segment(mode)
    print(f"  {metrics['intra_segment']['seconds']:.3f}s partitioned vs "
          f"{metrics['intra_segment']['serial_seconds']:.3f}s serial "
          f"({metrics['intra_segment']['speedup']:.2f}x, verdicts bit-identical)")
    print("preempt_latency ...", flush=True)
    metrics["preempt_latency"] = bench_preempt_latency(mode)
    print(f"  {metrics['preempt_latency']['seconds'] * 1000:.1f} ms cancel-to-unwind")
    return {
        "schema": SCHEMA,
        "mode": mode,
        "machine_score": score,
        "metrics": metrics,
    }


def check_against(report: dict, baseline_path: Path, tolerance: float) -> int:
    baseline = json.loads(baseline_path.read_text())
    if baseline.get("schema") != SCHEMA:
        print(f"baseline schema {baseline.get('schema')} != {SCHEMA}; re-run --baseline")
        return 2
    if baseline.get("mode") != report["mode"]:
        print(
            f"baseline mode {baseline.get('mode')!r} != current {report['mode']!r}; "
            "compare like with like"
        )
        return 2
    scale = report["machine_score"] / baseline["machine_score"]
    print(f"\nbaseline comparison (host-speed scale {scale:.2f}x, "
          f"tolerance {tolerance:.0%}):")
    failures = 0
    for name, current in report["metrics"].items():
        base = baseline["metrics"].get(name)
        if base is None:
            print(f"  {name:<18} (new metric, no baseline)")
            continue
        allowed = base["seconds"] * scale * (1.0 + tolerance)
        ratio = current["seconds"] / (base["seconds"] * scale)
        verdict = "ok" if current["seconds"] <= allowed else "REGRESSION"
        if verdict != "ok":
            failures += 1
        print(f"  {name:<18} {current['seconds']:.3f}s vs {base['seconds']:.3f}s "
              f"(normalised ratio {ratio:.2f}) {verdict}")
    columnar = report["metrics"].get("carried_columnar")
    if columnar is not None:
        # Relative in-run gate, independent of host speed and baseline:
        # the columnar kernel must stay measurably faster than the object
        # path it replaced on the very same run.
        speedup = columnar["speedup"]
        ok = speedup >= MIN_COLUMNAR_SPEEDUP
        if not ok:
            failures += 1
        print(f"  columnar speedup   {speedup:.2f}x "
              f"(gate >= {MIN_COLUMNAR_SPEEDUP}x) {'ok' if ok else 'REGRESSION'}")
    intra = report["metrics"].get("intra_segment")
    if intra is not None:
        # The parallel speedup claim is meaningless on hosts with fewer
        # cores than parts + client: gate only where it can hold, report
        # everywhere (the bit-identical assertion already ran in-suite).
        cores = os.cpu_count() or 1
        speedup = intra["speedup"]
        if cores >= INTRA_SEGMENT_GATE_CORES:
            ok = speedup >= MIN_INTRA_SEGMENT_SPEEDUP
            if not ok:
                failures += 1
            print(f"  intra-seg speedup  {speedup:.2f}x "
                  f"(gate >= {MIN_INTRA_SEGMENT_SPEEDUP}x on {cores} cores) "
                  f"{'ok' if ok else 'REGRESSION'}")
        else:
            print(f"  intra-seg speedup  {speedup:.2f}x "
                  f"(report-only: {cores} cores < {INTRA_SEGMENT_GATE_CORES})")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small CI-sized budgets")
    parser.add_argument("--baseline", action="store_true",
                        help="write the report to --output as the new baseline")
    parser.add_argument("--check", type=Path, default=None,
                        help="compare against a committed baseline JSON")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed normalised slowdown before failing (default 0.25)")
    parser.add_argument("--output", type=Path, default=Path("BENCH_hotpath.json"))
    args = parser.parse_args()

    mode = "smoke" if args.smoke else "full"
    report = run_suite(mode)
    if args.baseline:
        args.output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nbaseline written to {args.output}")
    if args.check is not None:
        return check_against(report, args.check, args.tolerance)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
