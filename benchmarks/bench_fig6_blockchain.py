"""Fig 6 — the blockchain experiments.

Paper series: monitor runtime against the number of events in the
transaction log, for the two-party swap (g=1), three-party swap (g=2),
and auction (g=2).  Expected shape: runtime grows with the event count.

The event count is varied the way the paper's scenario matrices do: by
how many protocol steps the parties attempt.
"""

from __future__ import annotations

import pytest

from repro.chain.log import computation_from_chains
from repro.protocols.auction import AuctionBehavior, run_auction
from repro.specs import auction_specs, swap2_specs, swap3_specs

from conftest import bench_monitor, cached_swap2_computation, cached_swap3_computation

EPSILON_MS = 5
DELTA_MS = 500

#: Two-party behaviours with increasing step counts (=> more events).
SWAP2_POINTS = {
    "steps2": (1, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0),
    "steps4": (1, 0, 1, 0, 1, 0, 1, 0, 0, 0, 0, 0),
    "steps6": (1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0),
}

SWAP3_POINTS = {
    "steps6": (1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0),
    "steps9": (1, 1, 1, 1, 1, 1, 1, 1, 1, 0, 0, 0),
    "steps12": (1,) * 12,
}

AUCTION_POINTS = {
    "quiet": AuctionBehavior(carol_bid="skip", coin_declaration="skip", tckt_declaration="skip"),
    "honest": AuctionBehavior(),
    "contested": AuctionBehavior(
        coin_declaration="sb",
        tckt_declaration="sc",
        bob_challenges=True,
        carol_challenges=True,
    ),
}


@pytest.mark.parametrize("point", sorted(SWAP2_POINTS))
def bench_swap2(benchmark, point: str) -> None:
    computation = cached_swap2_computation(SWAP2_POINTS[point], EPSILON_MS, DELTA_MS)
    policy = swap2_specs.liveness(DELTA_MS)
    monitor = bench_monitor(
        policy,
        segments=1,  # the paper monitors the 2-party log unsegmented
        timestamp_samples=3,
        max_distinct_per_segment=None,
    )
    result = benchmark.pedantic(monitor.run, args=(computation,), rounds=2, iterations=1)
    assert result.verdicts
    benchmark.extra_info["events"] = len(computation)


@pytest.mark.parametrize("point", sorted(SWAP3_POINTS))
def bench_swap3(benchmark, point: str) -> None:
    computation = cached_swap3_computation(SWAP3_POINTS[point], EPSILON_MS, DELTA_MS)
    policy = swap3_specs.liveness(DELTA_MS)
    monitor = bench_monitor(
        policy,
        segments=2,  # the paper uses g=2 for the larger protocols
        timestamp_samples=2,
        max_distinct_per_segment=None,
    )
    result = benchmark.pedantic(monitor.run, args=(computation,), rounds=2, iterations=1)
    assert result.verdicts
    benchmark.extra_info["events"] = len(computation)


@pytest.mark.parametrize("point", sorted(AUCTION_POINTS))
def bench_auction(benchmark, point: str) -> None:
    setup = run_auction(AUCTION_POINTS[point], epsilon_ms=EPSILON_MS, delta_ms=DELTA_MS)
    computation = computation_from_chains([setup.coin, setup.tckt], EPSILON_MS)
    policy = auction_specs.liveness(DELTA_MS)
    monitor = bench_monitor(
        policy,
        segments=2,
        timestamp_samples=2,
        max_distinct_per_segment=None,
    )
    result = benchmark.pedantic(monitor.run, args=(computation,), rounds=2, iterations=1)
    assert result.verdicts
    benchmark.extra_info["events"] = len(computation)
