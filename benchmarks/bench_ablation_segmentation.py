"""Ablation — segmentation on/off, and the enumeration baseline.

The paper's Section V-C motivates chopping the computation: per-segment
solver instances are exponentially smaller.  This ablation compares:

* the segmented monitor (g = 8),
* the unsegmented monitor (g = 1), and
* the explicit trace-enumeration baseline (Section I's strawman),

on the same workload and enumeration budget.
"""

from __future__ import annotations

import pytest

from repro.bench.workload import formula_for
from repro.monitor.baseline import EnumerationMonitor
from repro.monitor.smt_monitor import SmtMonitor

from conftest import cached_workload

BUDGET = 300


def _workload():
    return cached_workload("fischer", 2, 0.8, 10.0, 15)


def bench_segmented(benchmark) -> None:
    monitor = SmtMonitor(
        formula_for("phi4", 2, 600), segments=8, max_traces_per_segment=BUDGET
    )
    result = benchmark.pedantic(monitor.run, args=(_workload(),), rounds=2, iterations=1)
    assert result.verdicts


def bench_unsegmented(benchmark) -> None:
    monitor = SmtMonitor(
        formula_for("phi4", 2, 600), segments=1, max_traces_per_segment=BUDGET
    )
    result = benchmark.pedantic(monitor.run, args=(_workload(),), rounds=2, iterations=1)
    assert result.verdicts


def bench_enumeration_baseline(benchmark) -> None:
    monitor = EnumerationMonitor(formula_for("phi4", 2, 600), max_traces=BUDGET)
    result = benchmark.pedantic(monitor.run, args=(_workload(),), rounds=2, iterations=1)
    assert result.verdicts
