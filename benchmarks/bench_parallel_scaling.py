"""Parallel-scaling benchmark: batch throughput against worker count.

The workload is Fig 5d's (phi4 on the 2-process Fischer model, l = 2 s,
10 events/s, epsilon 15 ms): a batch of independent computations (one
per seed) is monitored through a :class:`~repro.service.MonitorService`
pool at 1/2/4/8 workers (pool spawn excluded — the service is persistent;
``benchmarks/bench_service_sessions.py`` measures the spawn cost itself).  On a machine with >= 4 cores the
4-worker point completes the batch at least ~2x faster than the serial
point; on fewer cores the sweep still runs but only documents pool
overhead (the standalone entry point prints the speedup either way and
only *asserts* >= 2x when the hardware can deliver it).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py

or through pytest-benchmark (slow lane)::

    PYTHONPATH=src python -m pytest benchmarks/bench_parallel_scaling.py \
        -o python_files=bench_*.py -o python_functions=bench_* --benchmark-only
"""

from __future__ import annotations

import os

import pytest

from repro.bench.reporting import format_batch_report
from repro.bench.runner import run_batch_timed
from repro.bench.workload import formula_for, model_for_formula
from repro.service import MonitorService

from conftest import TRACE_BUDGET, bench_monitor_kwargs, cached_workload

WORKER_COUNTS = (1, 2, 4, 8)
BATCH_SEEDS = tuple(range(8))

#: Fig 5d workload parameters (phi4 / Fischer, the paper's defaults).
FORMULA_NAME = "phi4"
PROCESSES = 2
LENGTH_SECONDS = 2.0
EVENT_RATE = 10.0
EPSILON_MS = 15
SEGMENTS = 16


def _batch():
    model = model_for_formula(FORMULA_NAME)
    return [
        cached_workload(model, PROCESSES, LENGTH_SECONDS, EVENT_RATE, EPSILON_MS, seed)
        for seed in BATCH_SEEDS
    ]


def _formula():
    return formula_for(FORMULA_NAME, PROCESSES, 600)


def _run(workers: int, service: MonitorService | None = None):
    return run_batch_timed(
        _formula(),
        _batch(),
        monitor="smt",
        workers=workers,
        service=service,
        **bench_monitor_kwargs(segments=SEGMENTS),
    )


@pytest.mark.slow
@pytest.mark.parametrize("workers", WORKER_COUNTS)
def bench_parallel_batch(benchmark, workers: int) -> None:
    # workers=1 is the inline serial baseline (no pool, no IPC) so the
    # speedup numerator measures the algorithm, not queue round-trips.
    if workers <= 1:
        report = benchmark.pedantic(_run, args=(workers,), rounds=2, iterations=1)
    else:
        with MonitorService(
            workers=workers, monitor="smt", **bench_monitor_kwargs(segments=SEGMENTS)
        ) as service:
            report = benchmark.pedantic(
                _run, args=(workers, service), rounds=2, iterations=1
            )
    assert not report.errors
    assert report.verdict_totals
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["utilization"] = round(report.utilization, 3)


def main() -> None:
    print(f"cpu cores: {os.cpu_count()}")
    reports = {}
    for workers in WORKER_COUNTS:
        if workers <= 1:
            reports[workers] = _run(workers)  # inline serial baseline
            continue
        with MonitorService(
            workers=workers, monitor="smt", **bench_monitor_kwargs(segments=SEGMENTS)
        ) as service:
            reports[workers] = _run(workers, service)
    serial_wall = reports[1].wall_seconds
    print(format_batch_report("parallel batch @ 4 workers", reports[4]))
    print()
    print(f"{'workers':>8} {'wall(s)':>10} {'speedup':>8} {'busy':>6}")
    for workers, report in reports.items():
        speedup = serial_wall / report.wall_seconds if report.wall_seconds else float("inf")
        print(
            f"{workers:>8} {report.wall_seconds:>10.3f} {speedup:>8.2f} "
            f"{report.utilization:>6.0%}"
        )
        assert not report.errors, report.errors
        assert report.verdict_totals == reports[1].verdict_totals, (
            "parallel batch changed the verdict totals"
        )
    speedup_at_4 = serial_wall / reports[4].wall_seconds
    # Wall-clock assertions only hold on dedicated multi-core hardware;
    # shared CI runners (CI=true) and small containers get the numbers
    # without the hard gate.
    if (os.cpu_count() or 1) >= 4 and not os.environ.get("CI"):
        assert speedup_at_4 >= 2.0, (
            f"expected >= 2x speedup at 4 workers, measured {speedup_at_4:.2f}x"
        )
        print(f"\nspeedup at 4 workers: {speedup_at_4:.2f}x (>= 2x required: ok)")
    else:
        print(
            f"\nspeedup at 4 workers: {speedup_at_4:.2f}x "
            f"(not asserted: {os.cpu_count()} core(s), CI={bool(os.environ.get('CI'))})"
        )


if __name__ == "__main__":
    main()
