"""Section VI-B.3 — the Delta-vs-epsilon design lesson.

The paper's observation: when the clock-skew bound epsilon approaches the
transaction deadline Delta, the monitor reports *both* True and False for
the same log (the deadline check becomes timestamp-nondeterministic), so
contracts should not use Delta comparable to epsilon.

These benchmarks sweep epsilon for a fixed small Delta and (a) time the
monitor and (b) record the verdict set per point; the verdict-set flip is
asserted at the extremes.
"""

from __future__ import annotations

import pytest

from repro.chain.log import computation_from_chains
from repro.monitor.smt_monitor import SmtMonitor
from repro.protocols.scenarios import SWAP2_CONFORMING
from repro.protocols.swap2 import run_swap2
from repro.specs import swap2_specs

DELTA_MS = 20
EPSILONS_MS = (2, 5, 10, 20, 30)


def _verdicts_for(epsilon_ms: int):
    setup = run_swap2(list(SWAP2_CONFORMING), epsilon_ms=epsilon_ms, delta_ms=DELTA_MS)
    computation = computation_from_chains([setup.apricot, setup.banana], epsilon_ms)
    policy = swap2_specs.liveness(DELTA_MS)
    monitor = SmtMonitor(policy, timestamp_samples=3, max_traces_per_segment=3000)
    return monitor, computation


@pytest.mark.parametrize("epsilon_ms", EPSILONS_MS)
def bench_delta_vs_epsilon(benchmark, epsilon_ms: int) -> None:
    monitor, computation = _verdicts_for(epsilon_ms)
    result = benchmark.pedantic(monitor.run, args=(computation,), rounds=2, iterations=1)
    benchmark.extra_info["verdicts"] = sorted(result.verdicts)
    benchmark.extra_info["epsilon_over_delta"] = epsilon_ms / DELTA_MS
    if epsilon_ms <= DELTA_MS // 4:
        # Small skew: the conforming run is deterministically live.
        assert result.verdicts == frozenset({True})
    if epsilon_ms >= DELTA_MS:
        # Skew comparable to the deadline: timestamp nondeterminism makes
        # both verdicts possible — the paper's design warning.
        assert result.verdicts == frozenset({True, False})
