#!/usr/bin/env python3
"""Quickstart: monitor an MTL property over a partially synchronous
distributed computation.

This reproduces the paper's Fig 3 example end to end:

* two processes log events with their own clocks (max skew epsilon = 2);
* the specification is ``a U[0,6) b``;
* because the true timestamps are only known up to the skew bound, the
  very same log admits traces that satisfy the formula and traces that
  violate it — the monitor reports the whole verdict set.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import mtl
from repro.distributed import DistributedComputation
from repro.monitor import make_monitor


def main() -> None:
    # 1. Parse the specification (Section II-B syntax).
    spec = mtl.parse("a U[0,6) b")
    print(f"specification : {spec}")

    # 2. Build the distributed computation of Fig 3:
    #    P1 logs 'a' at local time 1 and nothing at 4;
    #    P2 logs 'a' at 2 and 'b' at 5; clocks agree only within eps = 2.
    computation = DistributedComputation.from_event_lists(
        2,
        {
            "P1": [(1, "a"), (4, ())],
            "P2": [(2, "a"), (5, "b")],
        },
    )
    print(f"computation   :\n{computation}")

    # 3. Build a monitor through the factory and run it.  saturate=False
    #    asks the solver-backed engine for exact per-verdict trace-class
    #    counts, not just the verdict set.
    result = make_monitor(spec, "smt", saturate=False).run(computation)
    print(f"verdict set   : {sorted(result.verdicts)}")
    print(f"trace classes : {result.verdict_counts}")
    print(f"deterministic : {result.is_deterministic}")

    # 4. Cross-check against the brute-force baseline (identical by the
    #    soundness tests; this is the exponential monitor the paper's
    #    technique replaces).
    baseline = make_monitor(spec, "baseline").run(computation)
    assert baseline.verdict_counts == result.verdict_counts
    print("baseline agrees with the solver-backed monitor")

    # 5. kind="auto" inspects the computation (event count, skew window,
    #    formula size) and picks an engine; this one is small enough for
    #    the exact memoized fast monitor.
    auto = make_monitor(spec, computation=computation)
    print(f"auto-selected : {type(auto).__name__}")
    assert auto.run(computation).verdicts == result.verdicts

    # 6. The same system with perfectly synchronized clocks (eps = 1) has
    #    a unique trace and therefore a unique verdict.
    synchronous = DistributedComputation.from_event_lists(
        1, {"P1": [(1, "a"), (4, ())], "P2": [(2, "a"), (5, "b")]}
    )
    sync_result = make_monitor(spec, "smt").run(synchronous)
    print(f"with perfect clocks the verdict is {sorted(sync_result.verdicts)}")


if __name__ == "__main__":
    main()
