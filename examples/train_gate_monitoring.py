#!/usr/bin/env python3
"""Monitor UPPAAL-style benchmark models (paper Section VI-A).

Simulates the Train-Gate and Fischer models, converts their event logs to
partially synchronous computations (per-process skewed clocks, bounded by
epsilon), and monitors the paper's phi1/phi2 and phi3/phi4 specs.

Run:  python examples/train_gate_monitoring.py
"""

from __future__ import annotations

from repro.monitor import SmtMonitor
from repro.specs import uppaal_specs
from repro.timed_automata import fischer, train_gate
from repro.timed_automata.trace_gen import generate

EPSILON_MS = 15
EVENT_RATE = 10.0


def show(result, name: str) -> None:
    traces = sum(r.traces_enumerated for r in result.segment_reports)
    print(
        f"  {name:6s} -> verdicts={sorted(result.verdicts)} "
        f"(segments={len(result.segment_reports)}, traces considered={traces})"
    )


def main() -> None:
    print("=== Train-Gate, 2 trains ===")
    computation = generate(
        train_gate.build_network, 2, 40, epsilon_ms=EPSILON_MS,
        events_per_second=EVENT_RATE, seed=7,
    )
    print(f"  generated {len(computation)} events on {len(computation.processes)} processes")
    for name, builder in (("phi1", uppaal_specs.phi1), ("phi2", uppaal_specs.phi2)):
        monitor = SmtMonitor(
            builder(2), segments=8,
            max_traces_per_segment=500, max_distinct_per_segment=4,
        )
        show(monitor.run(computation), name)

    print("=== Fischer's protocol, 3 processes ===")
    computation = generate(
        fischer.build_network, 3, 60, epsilon_ms=EPSILON_MS,
        events_per_second=EVENT_RATE, seed=11,
    )
    print(f"  generated {len(computation)} events on {len(computation.processes)} processes")
    phi3 = uppaal_specs.phi3(3)
    phi4 = uppaal_specs.phi4(3, window_ms=2000)
    for name, phi in (("phi3", phi3), ("phi4", phi4)):
        monitor = SmtMonitor(
            phi, segments=10,
            max_traces_per_segment=500, max_distinct_per_segment=4,
        )
        show(monitor.run(computation), name)

    print(
        "\nphi3 (mutual exclusion) should be SATISFIED on every trace —\n"
        "Fischer's protocol is correct; timestamp uncertainty may still\n"
        "make the timed response spec phi4 nondeterministic."
    )


if __name__ == "__main__":
    main()
