#!/usr/bin/env python3
"""Monitor the cross-chain auction protocol (paper Appendix IX-B.2).

Alice auctions a ticket; Bob and Carol bid on a separate coin chain.
Three scenarios are executed and checked against the auction policies:
an honest auction, a cheating auctioneer who declares different winners
on the two chains (caught by bidder challenges), and a silent auctioneer
who never declares.

Run:  python examples/auction_monitoring.py
"""

from __future__ import annotations

from repro.chain import computation_from_chains
from repro.monitor import SmtMonitor
from repro.protocols import AuctionBehavior, run_auction
from repro.specs import auction_specs

DELTA_MS = 500
EPSILON_MS = 5

SCENARIOS = {
    "honest": AuctionBehavior(),
    "cheating-auctioneer": AuctionBehavior(
        coin_declaration="sb",
        tckt_declaration="sc",
        bob_challenges=True,
        carol_challenges=True,
    ),
    "silent-auctioneer": AuctionBehavior(
        coin_declaration="skip", tckt_declaration="skip"
    ),
}


def verdict_text(verdicts: frozenset[bool]) -> str:
    if verdicts == frozenset({True}):
        return "SATISFIED"
    if verdicts == frozenset({False}):
        return "VIOLATED"
    return "NONDETERMINISTIC {T, F}"


def main() -> None:
    policies = auction_specs.all_policies(DELTA_MS)
    for name, behavior in SCENARIOS.items():
        setup = run_auction(behavior, epsilon_ms=EPSILON_MS, delta_ms=DELTA_MS)
        print(f"\n=== scenario: {name} ===")
        print("  coin log:", ", ".join(str(e) for e in setup.coin.log))
        print("  tckt log:", ", ".join(str(e) for e in setup.tckt.log))
        computation = computation_from_chains([setup.coin, setup.tckt], EPSILON_MS)
        for policy_name, policy in policies.items():
            result = SmtMonitor(
                policy, segments=2, timestamp_samples=2, max_traces_per_segment=2000
            ).run(computation)
            print(f"  {policy_name:16s} -> {verdict_text(result.verdicts)}")
        tckt = setup.tckt.token("TCKT")
        coin = setup.coin.token("COIN")
        print(
            "  ticket holder:",
            next(
                (p for p in ("alice", "bob", "carol") if tckt.balance_of(p) >= 100),
                "escrow",
            ),
            f"| alice's coins: {coin.balance_of('alice')}",
        )


if __name__ == "__main__":
    main()
