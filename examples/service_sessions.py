#!/usr/bin/env python3
"""The monitoring service: one persistent pool, batches *and* live sessions.

The one-shot entry points spawn a pool per call; a deployed monitor
instead holds a :class:`repro.service.MonitorService` for its whole
lifetime and pushes work at it continuously — asynchronous batches of
finished computations on one side, live per-feed sessions on the other,
all multiplexed over the same workers.

Run:  PYTHONPATH=src python examples/service_sessions.py
"""

from __future__ import annotations

from repro.distributed import DistributedComputation
from repro.mtl import parse
from repro.service import MonitorService

EPSILON = 2


def finished_computations() -> list[DistributedComputation]:
    """A few already-complete logs (the batch surface's input)."""
    fig3 = DistributedComputation.from_event_lists(
        EPSILON, {"P1": [(1, "a"), (4, ())], "P2": [(2, "a"), (5, "b")]}
    )
    late = DistributedComputation.from_event_lists(
        EPSILON, {"P1": [(0, "a"), (6, ())], "P2": [(3, "a"), (9, "b")]}
    )
    return [fig3, late, fig3]


def main() -> None:
    spec = parse("a U[0,6) b")
    print(f"specification: {spec}\n")

    with MonitorService(workers=2, formula=spec, saturate=False) as service:
        # --- batch surface: ordered results, per-item error capture -------
        report = service.map(finished_computations())
        print(f"batch: {report}")
        for item in report.items:
            print(f"  item {item.index}: {item.result} (worker {item.worker})")

        # --- async submission: fire now, collect later --------------------
        future = service.submit(finished_computations()[0])
        print(f"\nasync item: {future.result()!s:.60}")

        # --- session surface: two live feeds, sharded across workers ------
        swap = service.open_session(spec, EPSILON, key="swap-feed")
        auction = service.open_session(parse("F[0,12) b"), EPSILON, key="chain-b")
        print(
            f"\nsessions open: swap on worker {swap.worker_index}, "
            f"auction on worker {auction.worker_index}"
        )

        swap.observe("apricot", 1, "a")
        auction.observe("coin", 2, ())
        swap.observe("banana", 2, "a")
        swap.advance_to(4)                      # everything below t=4 is final
        auction.observe("tckt", 8, "b")
        swap.observe("banana", 5, "b")

        status = swap.poll()
        print(f"swap mid-stream: {status}")

        print(f"swap verdicts:    {swap.finish()}")
        print(f"auction verdicts: {auction.finish()}")


if __name__ == "__main__":
    main()
