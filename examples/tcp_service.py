#!/usr/bin/env python3
"""A TCP-backed monitoring pool: two worker agents, one service.

Demonstrates the pluggable transport layer end-to-end on localhost —
the same thing you would run across hosts by starting
``scripts/run_worker_agent.py`` on each worker machine and listing
``tcp://host:port`` endpoints from the client::

    PYTHONPATH=src python examples/tcp_service.py

The example spawns the agents itself (as separate OS processes, exactly
like remote hosts would run them), drives a `submit_many` batch and a
live session through the pool, and verifies the outcome matches a
local-process pool bit-for-bit.
"""

from repro.distributed.computation import DistributedComputation
from repro.mtl import parse
from repro.service import MonitorService
from repro.transport.agent import spawn_agent


def build_computations():
    fig3 = DistributedComputation.from_event_lists(
        2, {"P1": [(1, "a"), (4, ())], "P2": [(2, "a"), (5, "b")]}
    )
    skewed = DistributedComputation.from_event_lists(
        3,
        {
            "P1": [(0, "a"), (3, "a"), (6, ())],
            "P2": [(1, ()), (4, "b")],
            "P3": [(2, "a")],
        },
    )
    return [fig3, skewed, fig3, skewed]


def run_workload(service: MonitorService):
    spec = parse("a U[0,6) b")
    futures = service.submit_many(build_computations(), formula=spec, saturate=False)
    report = service.gather(futures)
    assert not report.errors, report.errors

    session = service.open_session(parse("F[0,8) b"), epsilon=2)
    for process, t, props in [("P1", 1, "a"), ("P2", 2, "a"), ("P1", 5, "b")]:
        session.observe(process, t, props)
    session.advance_to(4)
    result = session.finish()
    return report, result


def main() -> int:
    print("spawning two worker agents on localhost ...")
    agents = [spawn_agent() for _ in range(2)]
    endpoints = [f"tcp://{host}:{port}" for _, host, port in agents]
    try:
        print(f"pool endpoints: {endpoints}")
        with MonitorService(endpoints=endpoints) as service:
            print(f"worker pids over TCP: {service.worker_pids()}")
            report, session_result = run_workload(service)
            print(f"batch over TCP:   {report}")
            print(f"session over TCP: {session_result.verdict_counts}")

        with MonitorService(workers=2) as service:
            local_report, local_session = run_workload(service)
        assert [i.result.verdict_counts for i in report.items] == [
            i.result.verdict_counts for i in local_report.items
        ], "TCP and local pools disagree on the batch"
        assert session_result.verdict_counts == local_session.verdict_counts, (
            "TCP and local pools disagree on the session"
        )
        print("bit-identical to a local-process pool: ok")
    finally:
        for popen, _, _ in agents:
            popen.kill()
            popen.wait(timeout=10)
            popen.stdout.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
