#!/usr/bin/env python3
"""Monitor the hedged two-party swap protocol (paper Section VI-B).

Deploys the Apricot/Banana swap contracts on two simulated blockchains,
executes three scenarios (conforming, sore-loser, late step), and checks
each transaction log against the paper's MTL policies: liveness,
conformance, safety, and the sore-loser hedge.

Run:  python examples/two_party_swap.py
"""

from __future__ import annotations

from repro.chain import computation_from_chains
from repro.monitor import FastMonitor
from repro.protocols import SWAP2_CONFORMING, run_swap2
from repro.specs import swap2_specs

DELTA_MS = 500
EPSILON_MS = 5

SCENARIOS = {
    "conforming": list(SWAP2_CONFORMING),
    # Bob walks away after Alice redeems (step 6 skipped) — the classic
    # sore-loser position for Alice's escrowed apricot tokens.
    "bob-aborts": [1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 0, 0],
    # Alice posts her premium after the deadline.
    "alice-late-start": [1, 1] + list(SWAP2_CONFORMING[2:]),
}


def verdict_text(verdicts: frozenset[bool]) -> str:
    if verdicts == frozenset({True}):
        return "SATISFIED"
    if verdicts == frozenset({False}):
        return "VIOLATED"
    return "NONDETERMINISTIC {T, F}"


def main() -> None:
    policies = swap2_specs.all_policies(DELTA_MS)
    for scenario_name, behavior in SCENARIOS.items():
        setup = run_swap2(behavior, epsilon_ms=EPSILON_MS, delta_ms=DELTA_MS)
        print(f"\n=== scenario: {scenario_name} ===")
        print("  apricot log:", ", ".join(str(e) for e in setup.apricot.log))
        print("  banana  log:", ", ".join(str(e) for e in setup.banana.log))

        computation = computation_from_chains(
            [setup.apricot, setup.banana], EPSILON_MS
        )
        for policy_name, policy in policies.items():
            # FastMonitor computes the exact verdict multiset even though
            # the raw trace count here is in the billions.
            result = FastMonitor(policy).run(computation)
            classes = sum(result.verdict_counts.values())
            print(
                f"  {policy_name:18s} -> {verdict_text(result.verdicts)}"
                f"  ({classes} trace classes, exact)"
            )

        apr = setup.apricot.token("APR")
        ban = setup.banana.token("BAN")
        print(
            "  final balances: "
            f"alice APR={apr.balance_of('alice')} BAN={ban.balance_of('alice')}  "
            f"bob APR={apr.balance_of('bob')} BAN={ban.balance_of('bob')}"
        )


if __name__ == "__main__":
    main()
