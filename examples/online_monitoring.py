#!/usr/bin/env python3
"""Online monitoring of a live event stream (extension feature).

The paper's monitor is offline (full log in, verdict set out).  Deployed
against real chains, events arrive continuously; the
:class:`repro.monitor.OnlineMonitor` consumes them incrementally,
progressing the specification segment by segment and reporting verdicts
as soon as they are decided.

Run:  python examples/online_monitoring.py
"""

from __future__ import annotations

from repro.monitor import OnlineMonitor
from repro.mtl import parse

EPSILON = 3


def main() -> None:
    # A request/response style property: every request is answered within
    # 50 time units, forever (bounded reading over the observed window).
    spec = parse("G[0,200) (req -> F[0,50) ack)")
    print(f"specification: {spec}\n")

    monitor = OnlineMonitor(spec, epsilon=EPSILON)

    # Servers emit an 'idle' event after each ack: propositions persist
    # on a process's frontier until its next event (the paper's
    # frontier-state semantics), so the idle marker retires the ack.
    feed = [
        ("client", 10, "req"),
        ("server", 35, "ack"),
        ("server", 40, "idle"),
        ("client", 80, "req"),
        ("server", 100, "ack"),
        ("server", 105, "idle"),
        ("client", 150, "req"),
        # the final request is never acknowledged...
    ]
    boundaries = [60, 120, 200]

    cursor = 0
    for boundary in boundaries:
        while cursor < len(feed) and feed[cursor][1] < boundary:
            process, t, prop = feed[cursor]
            print(f"observe {prop!r} on {process} at local time {t}")
            monitor.observe(process, t, prop)
            cursor += 1
        decided = monitor.advance_to(boundary)
        print(
            f"-- advanced to t={boundary}: decided verdicts so far = "
            f"{sorted(decided) or 'none'}; "
            f"{monitor.undecided_residuals} residual formula(s) pending\n"
        )

    result = monitor.finish()
    print(f"final verdict set: {sorted(result.verdicts)}")
    print("(violated: the request at t=150 was never acknowledged)")


if __name__ == "__main__":
    main()
