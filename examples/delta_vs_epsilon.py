#!/usr/bin/env python3
"""The paper's design lesson: don't pick a deadline Delta comparable to
the clock-skew bound epsilon (Section VI-B.3).

Runs the *same conforming* two-party swap under increasing clock skew and
monitors the liveness policy.  Once epsilon approaches Delta, the
timestamps near the deadlines become ambiguous and the monitor reports
both verdicts for the identical log.

Run:  python examples/delta_vs_epsilon.py
"""

from __future__ import annotations

from repro.chain import computation_from_chains
from repro.monitor import SmtMonitor
from repro.protocols import SWAP2_CONFORMING, run_swap2
from repro.specs import swap2_specs

DELTA_MS = 20


def main() -> None:
    print(f"deadline Delta = {DELTA_MS} ms; sweeping the skew bound epsilon\n")
    print(f"{'epsilon':>8} {'eps/Delta':>10}   verdict set")
    print("-" * 44)
    for epsilon_ms in (2, 4, 8, 12, 16, 20, 30, 40):
        setup = run_swap2(
            list(SWAP2_CONFORMING), epsilon_ms=epsilon_ms, delta_ms=DELTA_MS
        )
        computation = computation_from_chains(
            [setup.apricot, setup.banana], epsilon_ms
        )
        policy = swap2_specs.liveness(DELTA_MS)
        result = SmtMonitor(
            policy, timestamp_samples=3, max_traces_per_segment=3000
        ).run(computation)
        verdicts = "{" + ", ".join(str(v) for v in sorted(result.verdicts)) + "}"
        marker = "  <-- nondeterministic!" if len(result.verdicts) == 2 else ""
        print(f"{epsilon_ms:>8} {epsilon_ms / DELTA_MS:>10.2f}   {verdicts}{marker}")

    print(
        "\nLesson (paper Section VI-B.3): once epsilon is comparable to\n"
        "Delta, the same conforming execution can be judged either way —\n"
        "choose contract deadlines well above the clock-sync bound."
    )


if __name__ == "__main__":
    main()
